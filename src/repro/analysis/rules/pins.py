"""RPL001 — buffer-pool pin/release discipline.

Snapshot-sharing accounting (paper Section 5) is only truthful if every
pin taken on a buffer-pool page is dropped again: a leaked pin makes the
page unevictable forever and silently inflates the pool's working set
until ``BufferPoolError: all buffer pool pages are pinned``.

The rule: any call to ``<pool>.fetch(...)`` / ``<pool>.create(...)``
(receiver named ``pool`` / ``_pool`` / ``buffer_pool``) that takes a pin
(no ``pin=False``) must do one of:

* transfer ownership by being returned (the caller releases through the
  owning object's ``release``/``unpin``);
* assign to a variable that is unpinned/released in a ``finally`` block
  enclosing the use, or returned later in the same function;
* opt out explicitly with ``pin=False``.

Direct writes to ``page.pin_count`` outside the buffer pool module are
also flagged: pin accounting must go through ``BufferPool`` so the
counters the eviction loop trusts stay consistent.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules import Checker, register

_POOL_NAMES = {"pool", "_pool", "buffer_pool"}
_FETCH_LIKE = {"fetch", "create"}
_RELEASE_LIKE = {"unpin", "release"}

#: modules that own pin accounting (exempt from the pin_count check):
#: the pool does the counting, the page defines/initializes the field
_PIN_OWNERS = {"storage/buffer_pool.py", "storage/page.py"}


def _receiver_name(node: ast.expr) -> Optional[str]:
    """Final name of a receiver chain: ``self.pager.pool`` -> "pool"."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_pool_fetch(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _FETCH_LIKE:
        return False
    return _receiver_name(func.value) in _POOL_NAMES


def _pin_disabled(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "pin" and isinstance(keyword.value, ast.Constant) \
                and keyword.value.value is False:
            return True
    return False


def _released_in_finally(ctx: ModuleContext, call: ast.Call,
                         var: Optional[str]) -> bool:
    """Is there an enclosing try whose finally unpins/releases ``var``?"""
    for ancestor in ctx.ancestors(call):
        if not isinstance(ancestor, ast.Try) or not ancestor.finalbody:
            continue
        for node in ast.walk(ast.Module(body=list(ancestor.finalbody),
                                        type_ignores=[])):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if attr not in _RELEASE_LIKE:
                continue
            if var is None:
                return True
            if any(isinstance(arg, ast.Name) and arg.id == var
                   for arg in node.args):
                return True
    return False


def _assigned_name(ctx: ModuleContext, call: ast.Call) -> Optional[str]:
    parent = ctx.parent(call)
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1 \
            and isinstance(parent.targets[0], ast.Name):
        return parent.targets[0].id
    if isinstance(parent, ast.AnnAssign) and isinstance(parent.target,
                                                        ast.Name):
        return parent.target.id
    return None


def _is_returned(ctx: ModuleContext, call: ast.Call,
                 var: Optional[str]) -> bool:
    parent = ctx.parent(call)
    if isinstance(parent, ast.Return):
        return True
    if var is None:
        return False
    func = ctx.enclosing_function(call)
    if func is None:
        return False
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Name) \
                and node.value.id == var:
            return True
    return False


@register
class PinDisciplineChecker(Checker):
    rule_id = "RPL001"
    name = "pin-discipline"
    description = (
        "buffer-pool pins must be released on all paths (try/finally), "
        "returned to the caller, or avoided with pin=False"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_pool_fetch(node):
                finding = self._check_fetch(ctx, node)
                if finding is not None:
                    yield finding
        if ctx.relpath not in _PIN_OWNERS:
            yield from self._check_pin_count_writes(ctx)

    def _check_fetch(self, ctx: ModuleContext,
                     call: ast.Call) -> Optional[Finding]:
        if _pin_disabled(call):
            return None
        var = _assigned_name(ctx, call)
        if _is_returned(ctx, call, var):
            return None
        if _released_in_finally(ctx, call, var):
            return None
        func = call.func
        assert isinstance(func, ast.Attribute)
        what = f"pinned page from {func.attr}()" + (
            f" bound to {var!r}" if var else "")
        return self.finding(
            ctx, call,
            f"{what} is never unpinned on this path",
            hint="release in a finally block, return the page to transfer "
                 "ownership, or fetch with pin=False",
        )

    def _check_pin_count_writes(self,
                                ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            target = None
            if isinstance(node, ast.Assign):
                target = node.targets[0] if node.targets else None
            elif isinstance(node, ast.AugAssign):
                target = node.target
            if isinstance(target, ast.Attribute) \
                    and target.attr == "pin_count":
                finding = self.finding(
                    ctx, node,
                    "pin_count mutated outside the buffer pool",
                    hint="go through BufferPool.fetch/unpin so eviction "
                         "accounting stays truthful",
                )
                if finding is not None:
                    yield finding
