"""Per-module analysis context: AST, parents, pragmas, qualnames.

Pragmas
-------
replint pragmas live in ``#`` comments and **must** carry a justification
after ``--`` (an escape hatch without a reason is itself a violation,
reported as RPL000)::

    page = pool.fetch(pid)  # replint: ignore[RPL010] -- handed to caller
    def _evict_one(self):   # replint: wal-exempt -- images already logged

Forms:

* ``ignore[RPL010]`` / ``ignore[RPL010,RPL003]`` — suppress those rules;
* named aliases (``wal-exempt``, ``lifecycle-exempt``, ``pin-exempt``,
  ``lockorder-exempt``, ``taint-exempt``, ``snapid-exempt``,
  ``taxonomy-exempt``) — readable synonyms for single rules.

A pragma suppresses findings anchored to its own line; checkers that
exempt whole functions also honour a pragma on the ``def`` line or the
line directly above it (decorators included).
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import ERROR, Finding

PRAGMA_ALIASES = {
    "wal-exempt": "RPL003",
    "pin-exempt": "RPL010",   # RPL001 was folded into RPL010 (replint v2)
    "taxonomy-exempt": "RPL002",
    "monoid-exempt": "RPL004",
    "snapid-exempt": "RPL005",
    "lifecycle-exempt": "RPL010",
    "lockorder-exempt": "RPL011",
    "taint-exempt": "RPL012",
    "race-exempt": "RPL020",
    "blocking-exempt": "RPL021",
    "durable-exempt": "RPL022",
    "purity-exempt": "RPL023",
    "typestate-exempt": "RPL030",
    "atomicity-exempt": "RPL031",
    "recovery-exempt": "RPL032",
    "confinement-exempt": "RPL033",
    # rqlint (query-level) aliases; a tuple value expands to several
    # rules.  These appear in SQL "--" comments (see
    # repro.analysis.query.driver) but share the alias table so the two
    # linters cannot drift apart.
    "query-exempt": ("RQL100", "RQL101", "RQL102", "RQL103",
                     "RQL104", "RQL105", "RQL106"),
    "mergeclass-exempt": ("RQL101", "RQL102", "RQL105", "RQL106"),
}

_PRAGMA_RE = re.compile(r"#\s*replint:\s*(?P<body>.+)$")
_IGNORE_RE = re.compile(r"ignore\[(?P<rules>[A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Pragma:
    line: int
    rules: Tuple[str, ...]
    justification: str

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) for every real comment (docstrings don't count)."""
    readline = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        return  # a syntax error elsewhere reports as RPL000


def parse_pragmas(source: str) -> Dict[int, Pragma]:
    """Extract replint pragmas, keyed by 1-based line number."""
    pragmas: Dict[int, Pragma] = {}
    for lineno, text in _comment_tokens(source):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        body = match.group("body").strip()
        directive, _, justification = body.partition("--")
        directive = directive.strip()
        rules: Set[str] = set()
        ignore = _IGNORE_RE.search(directive)
        if ignore is not None:
            rules.update(
                r.strip().upper() for r in ignore.group("rules").split(",")
                if r.strip()
            )
        for alias, rule in PRAGMA_ALIASES.items():
            if alias in directive:
                if isinstance(rule, tuple):
                    rules.update(rule)
                else:
                    rules.add(rule)
        pragmas[lineno] = Pragma(
            line=lineno,
            rules=tuple(sorted(rules)),
            justification=justification.strip(),
        )
    return pragmas


@dataclass
class ModuleContext:
    """Everything a checker needs to know about one source module."""

    path: Path           #: filesystem path (for display)
    relpath: str         #: package-relative posix path, e.g. "storage/wal.py"
    tree: ast.Module
    lines: List[str]
    pragmas: Dict[int, Pragma] = field(default_factory=dict)
    _parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    _qualnames: Dict[ast.AST, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, relpath: str,
                    path: Optional[Path] = None) -> "ModuleContext":
        tree = ast.parse(source)
        lines = source.splitlines()
        ctx = cls(path=path or Path(relpath), relpath=relpath,
                  tree=tree, lines=lines, pragmas=parse_pragmas(source))
        ctx._index()
        return ctx

    # -- indexing ----------------------------------------------------------

    def _index(self) -> None:
        def walk(node: ast.AST, qualname: str) -> None:
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
                name = getattr(child, "name", None)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    child_qual = f"{qualname}.{name}" if qualname else name
                    self._qualnames[child] = child_qual
                    walk(child, child_qual)
                else:
                    walk(child, qualname)
        walk(self.tree, "")

    # -- navigation --------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def qualname(self, node: ast.AST) -> str:
        """Qualname of the function/class enclosing ``node`` ("" if none)."""
        if node in self._qualnames:
            return self._qualnames[node]
        for ancestor in self.ancestors(node):
            if ancestor in self._qualnames:
                return self._qualnames[ancestor]
        return ""

    def functions(self) -> Iterator[ast.FunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def function_hash(self, node: Optional[ast.AST]) -> str:
        """Short content hash of the function enclosing ``node``.

        Used for line-stable baseline keys: the hash covers exactly the
        enclosing function's source lines, so edits elsewhere in the
        file don't invalidate a baselined entry, while any change to
        the function itself does.  Module-level findings hash the whole
        file.
        """
        func = None
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = node
        elif node is not None:
            func = self.enclosing_function(node)
        if func is not None:
            first = min(
                [func.lineno] + [d.lineno for d in func.decorator_list])
            text = "\n".join(self.lines[first - 1:func.end_lineno])
        else:
            text = "\n".join(self.lines)
        return hashlib.sha256(text.encode()).hexdigest()[:12]

    # -- pragma queries ----------------------------------------------------

    def pragma_lines_for(self, node: ast.AST,
                         include_function: bool = True) -> List[int]:
        """Lines whose pragmas may cover a finding anchored at ``node``."""
        lines = [getattr(node, "lineno", 0)]
        if include_function:
            func = node if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) else self.enclosing_function(node)
            if func is not None:
                first = min(
                    [func.lineno] + [d.lineno for d in func.decorator_list]
                )
                lines.extend([func.lineno, first - 1])
        return lines

    def suppressed(self, rule: str, node: ast.AST,
                   include_function: bool = True) -> bool:
        for lineno in self.pragma_lines_for(node, include_function):
            pragma = self.pragmas.get(lineno)
            if pragma is not None and rule in pragma.rules \
                    and pragma.justified:
                return True
        return False

    def unjustified_pragmas(self) -> Iterator[Finding]:
        """RPL000: every pragma must explain itself."""
        for pragma in self.pragmas.values():
            if not pragma.rules:
                yield Finding(
                    file=self.relpath, line=pragma.line, rule="RPL000",
                    severity=ERROR,
                    message="unrecognized replint pragma",
                    hint="use 'replint: ignore[RPLnnn] -- reason' or a "
                         "named alias (wal-exempt, pin-exempt, ...)",
                )
            elif not pragma.justified:
                yield Finding(
                    file=self.relpath, line=pragma.line, rule="RPL000",
                    severity=ERROR,
                    message="replint pragma without a justification",
                    hint="append ' -- <why this is safe>' to the pragma",
                )
