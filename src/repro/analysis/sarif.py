"""Minimal SARIF 2.1.0 rendering for replint findings.

Just enough of the standard for GitHub code scanning to ingest the log
and surface findings as PR annotations: one run, one driver, one rule
descriptor per rule id seen, one result per finding with a physical
location.  Severities map ``error -> error``, everything else to
``warning``.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.findings import ERROR, AnalysisReport, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _level(finding: Finding) -> str:
    return "error" if finding.severity == ERROR else "warning"


def _result(finding: Finding, baselined: bool = False,
            tool: str = "replint") -> Dict[str, object]:
    message = finding.message
    if finding.hint:
        message += f" ({finding.hint})"
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _level(finding),
        "message": {"text": message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.file,
                    "uriBaseId": "SRCROOT",
                },
                "region": {"startLine": max(finding.line, 1)},
            },
        }],
        "partialFingerprints": {
            f"{tool}Key/v2": finding.hashed_key,
        },
    }
    if baselined:
        # Baselined findings still appear in the log (so dashboards see
        # the debt) but carry an external suppression, which SARIF
        # consumers use to keep them out of the failing set.
        result["suppressions"] = [{
            "kind": "external",
            "justification": f"accepted in {tool}.baseline",
        }]
    return result


def render_sarif(report: AnalysisReport,
                 rule_descriptions: Dict[str, str],
                 tool: str = "replint") -> str:
    """The report as a SARIF 2.1.0 JSON document.

    ``tool`` names the driver (``replint`` for the Python-module rules,
    ``rqlint`` for the query-level rules) and parameterizes the
    fingerprint key.  Live findings come first; baselined findings
    follow as suppressed results.
    """
    seen_rules: List[str] = sorted(
        {finding.rule for finding in report.findings}
        | {finding.rule for finding in report.baselined}
        | set(rule_descriptions))
    rules = [{
        "id": rule_id,
        "shortDescription": {
            "text": rule_descriptions.get(rule_id, rule_id),
        },
    } for rule_id in seen_rules]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool,
                    "informationUri":
                        f"https://example.invalid/repro/{tool}",
                    "rules": rules,
                },
            },
            "results": [_result(f, tool=tool) for f in report.findings]
            + [_result(f, baselined=True, tool=tool)
               for f in report.baselined],
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
