"""Declarative protocol state machines for the typestate rules.

Each :class:`ProtocolSpec` describes one lifecycle protocol of the
storage/retro stack as a finite state machine: the states a tracked
value (or receiver object) can be in, the method calls that move it
between states, and the states in which firing an event is a protocol
violation.  The typestate engine
(:mod:`repro.analysis.dataflow.typestate`) interprets these specs over
per-function CFGs with call-graph summaries plugged in, which makes the
verification interprocedural (a ``commit`` buried in a helper still
transitions the caller's transaction) and path-aware on exception edges
(the try/finally dual CFG distinguishes a ``finally`` deregister from a
happy-path-only one).

Two tracking disciplines:

* ``value`` — the protocol subject is a *value* born at an origin call
  (``engine.begin()``, ``versions.register_reader(...)``) and tracked
  through local aliases, exactly like the RPL010 resource sites;
* ``receiver`` — the protocol subject is a long-lived *object*
  (``self.retro``, a chaos controller) and sites are keyed by the
  receiver expression; the machine starts in ``initial`` on the first
  event the function performs on that receiver.

Violation reporting is *definite*: an event is flagged only when every
non-escaped state the subject may be in at that point is a violation
state.  A may-analysis join that still contains one legal state stays
silent, which keeps retry loops (``schedule_crash`` re-armed after a
survived probe) and guarded cleanups out of the findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

#: subject selectors for events
RECV = "recv"       #: the method receiver (``subject.event(...)``)
ARG0 = "arg0"       #: the first positional argument
ARG1 = "arg1"       #: the second positional argument

#: tracking disciplines
VALUE = "value"
RECEIVER = "receiver"


@dataclass(frozen=True)
class Event:
    """One protocol event: a method name plus its transition table."""

    name: str                                   #: attribute-call name
    subject: str                                #: RECV / ARG0 / ARG1
    transitions: Tuple[Tuple[str, str], ...]    #: (state, next-state)
    #: states in which firing this event is a protocol violation
    violations: Tuple[str, ...] = ()
    #: record this event on parameter subjects into the function's
    #: summary (``protocol_ops``) so callers apply it interprocedurally;
    #: receiver-tracked protocols keep this off — their events are not
    #: must-events of the callee, and propagating a *may* mark/degrade
    #: through summaries would manufacture definite states at callers
    propagate: bool = True

    def next_states(self, state: str) -> str:
        for current, target in self.transitions:
            if current == state:
                return target
        return state


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol: states, events, origins and reporting policy."""

    name: str                           #: short id ("txn", "reader", ...)
    rule: str                           #: rule that reports violations
    kind: str                           #: human noun for findings
    initial: str
    tracking: str                       #: VALUE / RECEIVER
    #: implementing class *names* — an event applies when its call
    #: resolves to a method of one of these classes
    classes: FrozenSet[str]
    #: receiver-name fallbacks for unresolved sites (fixtures, duck
    #: typing); matching is on the trailing name (``self._versions`` ->
    #: ``_versions``)
    hints: FrozenSet[str]
    events: Tuple[Event, ...] = ()
    #: value-protocol origins: (module relpath, function name) roots
    origins: FrozenSet[Tuple[str, str]] = frozenset()
    #: call names that create a value of this protocol
    origin_names: FrozenSet[str] = frozenset()
    #: a value must reach a ``complete`` state on every path (the
    #: reader-handle obligation); protocols whose leaks RPL010 already
    #: reports (transactions, read contexts) keep this off
    must_complete: bool = False
    complete: FrozenSet[str] = frozenset()
    #: boolean guard methods: (method name, state proven on the true
    #: branch) — ``if txn.is_active(): engine.rollback(txn)`` verifies
    guards: Tuple[Tuple[str, str], ...] = ()
    #: fix guidance appended to findings
    fix_hint: str = ""

    def event(self, name: str) -> Optional[Event]:
        for event in self.events:
            if event.name == name:
                return event
        return None


#: transaction lifecycle: begun -> committed | rolled_back, nothing after
TXN = ProtocolSpec(
    name="txn",
    rule="RPL030",
    kind="transaction",
    initial="active",
    tracking=VALUE,
    classes=frozenset({"StorageEngine", "Transaction"}),
    hints=frozenset({"engine", "_engine", "aux_engine", "store", "db"}),
    origins=frozenset({("storage/engine.py", "begin")}),
    origin_names=frozenset({"begin"}),
    events=(
        Event("commit", ARG0, (("active", "committed"),),
              violations=("committed", "rolled_back")),
        Event("rollback", ARG0, (("active", "rolled_back"),),
              violations=("committed", "rolled_back")),
        Event("page_source", ARG0, (),
              violations=("committed", "rolled_back")),
        Event("ensure_active", RECV, (),
              violations=("committed", "rolled_back")),
        Event("modified_pages", RECV, (),
              violations=("committed", "rolled_back")),
    ),
    guards=(("is_active", "active"),),
    fix_hint="a transaction must reach exactly one of commit/rollback; "
             "guard late cleanup with txn.is_active()",
)

#: MVCC reader handles: registered -> deregistered exactly once
READER = ProtocolSpec(
    name="reader",
    rule="RPL030",
    kind="reader handle",
    initial="registered",
    tracking=VALUE,
    classes=frozenset({"VersionStore"}),
    hints=frozenset({"versions", "_versions", "version_store", "mvcc"}),
    origins=frozenset({("storage/mvcc.py", "register_reader")}),
    origin_names=frozenset({"register_reader"}),
    events=(
        Event("deregister_reader", ARG0, (("registered", "done"),),
              violations=("done",)),
    ),
    must_complete=True,
    complete=frozenset({"done"}),
    fix_hint="deregister the handle in a finally block so version "
             "chains can be pruned even when the read raises",
)

#: read contexts: open -> closed (idempotently); no reads after close
READ_CONTEXT = ProtocolSpec(
    name="read-context",
    rule="RPL030",
    kind="read context",
    initial="open",
    tracking=VALUE,
    classes=frozenset({"StorageEngine", "ReadContext"}),
    hints=frozenset({"engine", "_engine", "aux_engine", "ctx",
                     "read_ctx", "aux_read_ctx", "context"}),
    origins=frozenset({("storage/engine.py", "begin_read")}),
    origin_names=frozenset({"begin_read"}),
    events=(
        # ReadContext.close is idempotent by contract: closed -> closed
        # is legal, so no violation states on close itself.
        Event("close", RECV, (("open", "closed"),)),
        Event("read_source", ARG0, (), violations=("closed",)),
        Event("snapshot_source", ARG1, (), violations=("closed",)),
    ),
    fix_hint="a closed read context has deregistered its MVCC reader; "
             "reads through it see pruned version chains",
)

#: recovery ordering: recover/scrub before reads; reads after
#: mark_unavailable must re-check availability first
RETRO = ProtocolSpec(
    name="retro",
    rule="RPL032",
    kind="retro manager",
    initial="fresh",
    tracking=RECEIVER,
    classes=frozenset({"RetroManager"}),
    hints=frozenset({"retro", "manager", "_manager", "mgr"}),
    events=(
        Event("recover", RECV,
              (("degraded", "fresh"), ("checked", "fresh")),
              violations=("read",), propagate=False),
        Event("scrub", RECV, (("degraded", "fresh"),),
              violations=("read",), propagate=False),
        Event("mark_unavailable", RECV,
              (("fresh", "degraded"), ("read", "degraded"),
               ("checked", "degraded")),
              propagate=False),
        Event("snapshot_available", RECV, (("degraded", "checked"),),
              propagate=False),
        Event("snapshot_source", RECV,
              (("fresh", "read"), ("checked", "read")),
              violations=("degraded",), propagate=False),
        Event("build_spt", RECV,
              (("fresh", "read"), ("checked", "read")),
              violations=("degraded",), propagate=False),
        Event("diff_size", RECV,
              (("fresh", "read"), ("checked", "read")),
              violations=("degraded",), propagate=False),
    ),
    fix_hint="run recover()/scrub() before serving snapshot reads, and "
             "re-check snapshot_available() after marking snapshots "
             "unavailable",
)

#: chaos controller: scheduling a crash while one is already armed
#: silently overwrites the pending schedule
CHAOS = ProtocolSpec(
    name="chaos",
    rule="RPL030",
    kind="chaos controller",
    initial="idle",
    tracking=RECEIVER,
    classes=frozenset({"ChaosController", "ChaosDisk"}),
    hints=frozenset({"chaos", "controller", "_chaos", "disk"}),
    events=(
        Event("schedule_crash", RECV, (("idle", "armed"),),
              violations=("armed",), propagate=False),
        Event("power_on", RECV, (("armed", "idle"),),
              propagate=False),
    ),
    fix_hint="power_on() (or let the scheduled crash fire) before "
             "arming the next one — a second schedule_crash silently "
             "drops the pending schedule",
)

#: every protocol the typestate engine interprets, in reporting order
SPECS: Tuple[ProtocolSpec, ...] = (TXN, READER, READ_CONTEXT, RETRO, CHAOS)

SPECS_BY_NAME: Dict[str, ProtocolSpec] = {spec.name: spec for spec in SPECS}

#: event names that complete or advance a machine: statements firing one
#: propagate their POST-state along exception edges (a deregister that
#: itself raises must not read as "still registered" — flagging every
#: correct try/finally cleanup would drown the rule)
ADVANCING_EVENT_NAMES: FrozenSet[str] = frozenset(
    event.name
    for spec in SPECS
    for event in spec.events
    if event.transitions
)

#: all implementing class names, for scope computations
PROTOCOL_CLASS_NAMES: FrozenSet[str] = frozenset(
    name for spec in SPECS for name in spec.classes
)


def implementing_modules(contexts) -> Set[str]:
    """Module relpaths that define a protocol class or origin.

    Used by ``lint --changed``: an edit to this spec registry must
    re-lint every module implementing a protocol, not just the registry
    file's own call-graph neighbors.
    """
    import ast

    modules: Set[str] = {module for module, _ in
                         (origin for spec in SPECS
                          for origin in spec.origins)}
    for relpath, ctx in contexts.items():
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) \
                    and node.name in PROTOCOL_CLASS_NAMES:
                modules.add(relpath)
                break
    return {m for m in modules if m in contexts}
