"""replint — AST-based invariant checks for the repro tree.

The storage/SQL/RQL layers rest on protocol discipline the type system
cannot express: pins must be released, WAL appends must precede flushes,
aggregates must be complete monoids, exceptions must fit the taxonomy,
snapshot ids must not be hard-coded.  This package parses the whole
source tree with :mod:`ast` and enforces those invariants statically —
see README "Static analysis" for the rule catalogue and escape hatches.
"""

from repro.analysis.driver import (
    analyze_paths,
    analyze_source,
    main,
    package_root,
)
from repro.analysis.findings import AnalysisReport, Finding

__all__ = [
    "AnalysisReport",
    "Finding",
    "analyze_paths",
    "analyze_source",
    "main",
    "package_root",
]
