"""replint driver: walk a source tree, run every rule, report.

Entry points::

    python -m repro.analysis              # lint the installed repro tree
    python -m repro.cli lint [args...]    # same, via the main CLI
    analyze_paths([...]) / analyze_source(...)  # programmatic / tests

Exit status is 0 when no error-severity findings remain after pragma and
baseline filtering, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.findings import (
    ERROR,
    AnalysisReport,
    Finding,
    load_baseline,
    save_baseline,
)
from repro.analysis.rules import all_checkers
from repro.errors import AnalysisError

DEFAULT_BASELINE = "replint.baseline"


def package_root() -> Path:
    """The repro package directory (the default lint target)."""
    return Path(__file__).resolve().parent.parent


def iter_source_files(root: Path) -> Iterable[Tuple[Path, str]]:
    """Yield (path, package-relative posix path) for every .py module."""
    if root.is_file():
        yield root, root.name
        return
    for path in sorted(root.rglob("*.py")):
        yield path, path.relative_to(root).as_posix()


def analyze_source(source: str, relpath: str,
                   path: Optional[Path] = None) -> List[Finding]:
    """Run every rule over one module's source text (test entry point)."""
    try:
        ctx = ModuleContext.from_source(source, relpath, path)
    except SyntaxError as exc:
        return [Finding(
            file=relpath, line=exc.lineno or 0, rule="RPL000",
            severity=ERROR, message=f"syntax error: {exc.msg}",
        )]
    findings: List[Finding] = list(ctx.unjustified_pragmas())
    for checker in all_checkers():
        findings.extend(checker.check(ctx))
    return findings


def analyze_paths(paths: Sequence[Path],
                  baseline: Optional[Set[str]] = None) -> AnalysisReport:
    report = AnalysisReport()
    baseline = baseline or set()
    for root in paths:
        for path, relpath in iter_source_files(root):
            report.files_scanned += 1
            source = path.read_text(encoding="utf-8")
            for finding in analyze_source(source, relpath, path):
                if finding.baseline_key in baseline:
                    report.baselined.append(finding)
                else:
                    report.findings.append(finding)
    report.findings.sort()
    report.baselined.sort()
    return report


def _render_text(report: AnalysisReport, out) -> None:
    for finding in report.findings:
        print(finding.render(), file=out)
    summary = (
        f"replint: {report.files_scanned} files, "
        f"{len(report.errors)} errors, "
        f"{len(report.findings) - len(report.errors)} warnings"
    )
    if report.baselined:
        summary += f", {len(report.baselined)} baselined"
    print(summary, file=out)


def _render_json(report: AnalysisReport, out) -> None:
    payload = {
        "files_scanned": report.files_scanned,
        "findings": [vars(f) for f in report.findings],
        "baselined": [f.baseline_key for f in report.baselined],
    }
    print(json.dumps(payload, indent=2), file=out)


def _list_rules(out) -> None:
    print("RPL000 pragma-hygiene: replint pragmas must parse and carry "
          "a justification", file=out)
    for checker in all_checkers():
        print(f"{checker.rule_id} {checker.name}: {checker.description}",
              file=out)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="replint: AST invariant checks for the repro tree",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint "
                             "(default: the repro package)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: ./{DEFAULT_BASELINE} "
                             f"when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(out)
        return 0

    paths = list(args.paths) or [package_root()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        # A typo'd path must not read as "0 findings" in CI.
        for path in missing:
            print(f"replint: no such path: {path}", file=out)
        return 2
    baseline_path = args.baseline or Path(DEFAULT_BASELINE)
    try:
        baseline = load_baseline(baseline_path)
    except AnalysisError as exc:
        print(f"replint: {exc}", file=out)
        return 2
    report = analyze_paths(paths, baseline)

    if args.write_baseline:
        save_baseline(baseline_path, report.findings + report.baselined)
        print(f"replint: wrote {baseline_path} "
              f"({len(report.findings) + len(report.baselined)} entries)",
              file=out)
        return 0

    if args.as_json:
        _render_json(report, out)
    else:
        _render_text(report, out)
    return 0 if report.ok else 1
