"""replint driver: walk a source tree, run every rule, report.

Entry points::

    python -m repro.analysis              # lint the installed repro tree
    python -m repro.cli lint [args...]    # same, via the main CLI
    analyze_paths([...]) / analyze_source(...)  # programmatic / tests

Two analysis phases run over every tree: the intraprocedural checkers
(one module at a time) and the interprocedural program checkers
(RPL010–RPL012), which see all modules at once through the dataflow
engine in :mod:`repro.analysis.dataflow`.

Exit status is 0 when no error-severity findings remain after pragma and
baseline filtering, 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.findings import (
    ERROR,
    AnalysisReport,
    Finding,
    load_baseline,
    save_baseline,
)
from repro.analysis.rules import all_checkers, all_program_checkers
from repro.analysis.sarif import render_sarif
from repro.errors import AnalysisError

DEFAULT_BASELINE = "replint.baseline"


def package_root() -> Path:
    """The repro package directory (the default lint target)."""
    return Path(__file__).resolve().parent.parent


def iter_source_files(root: Path) -> Iterable[Tuple[Path, str]]:
    """Yield (path, package-relative posix path) for every .py module."""
    if root.is_file():
        yield root, root.name
        return
    for path in sorted(root.rglob("*.py")):
        yield path, path.relative_to(root).as_posix()


def _load_context(source: str, relpath: str,
                  path: Optional[Path] = None
                  ) -> Tuple[Optional[ModuleContext], List[Finding]]:
    try:
        return ModuleContext.from_source(source, relpath, path), []
    except SyntaxError as exc:
        return None, [Finding(
            file=relpath, line=exc.lineno or 0, rule="RPL000",
            severity=ERROR, message=f"syntax error: {exc.msg}",
        )]


def analyze_contexts(contexts: Sequence[ModuleContext],
                     cache_dir: Optional[Path] = None,
                     focus: Optional[Set[str]] = None) -> List[Finding]:
    """Both analysis phases over an already-parsed set of modules.

    With ``focus`` (a set of module relpaths, from ``lint --changed``)
    the whole tree is still parsed — the call graph and converged
    summaries must be complete — but the per-module checkers and the
    reported program-rule findings are scoped to the focused modules
    plus their direct call-graph neighbors.
    """
    from repro.analysis.dataflow import Program

    program = Program({ctx.relpath: ctx for ctx in contexts},
                      cache_dir=cache_dir, focus=focus)
    scope = program.focus_scope()
    findings: List[Finding] = []
    for ctx in contexts:
        if scope is not None and ctx.relpath not in scope:
            continue
        findings.extend(ctx.unjustified_pragmas())
        for checker in all_checkers():
            findings.extend(checker.check(ctx))
    for program_checker in all_program_checkers():
        for finding in program_checker.check_program(program):
            if scope is None or finding.file in scope:
                findings.append(finding)
    return findings


def analyze_source(source: str, relpath: str,
                   path: Optional[Path] = None) -> List[Finding]:
    """Run every rule over one module's source text (test entry point)."""
    ctx, findings = _load_context(source, relpath, path)
    if ctx is None:
        return findings
    return findings + analyze_contexts([ctx])


def _collect_contexts(paths: Sequence[Path]
                      ) -> Tuple[List[ModuleContext], List[Finding], int]:
    contexts: List[ModuleContext] = []
    findings: List[Finding] = []
    seen: Set[str] = set()
    scanned = 0
    for root in paths:
        for path, relpath in iter_source_files(root):
            scanned += 1
            # Multi-root runs (src + benchmarks + examples) can produce
            # the same root-relative path twice (e.g. ``__init__.py``);
            # contexts are keyed by relpath downstream, so a collision
            # would silently drop a module from the program.  Qualify
            # with the root's name only when needed — single-root
            # relpaths (what tests and ``--changed`` match on) keep
            # their familiar shape.
            if relpath in seen:
                relpath = f"{root.name}/{relpath}"
            seen.add(relpath)
            source = path.read_text(encoding="utf-8")
            ctx, errors = _load_context(source, relpath, path)
            findings.extend(errors)
            if ctx is not None:
                contexts.append(ctx)
    return contexts, findings, scanned


def _changed_relpaths(contexts: Sequence[ModuleContext],
                      repo_dir: Optional[Path] = None
                      ) -> Optional[Set[str]]:
    """Context relpaths touched per ``git diff HEAD`` + untracked files.

    Returns ``None`` when git is unavailable or errors (callers fall
    back to a full run — a broken pre-commit hook must not pass by
    linting nothing).
    """
    base = ["git"] if repo_dir is None else ["git", "-C", str(repo_dir)]
    try:
        diff = subprocess.run(
            base + ["diff", "--name-only", "HEAD"],
            capture_output=True, text=True, check=True)
        untracked = subprocess.run(
            base + ["ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        return None
    changed = [line.strip().replace("\\", "/")
               for line in (diff.stdout + untracked.stdout).splitlines()
               if line.strip().endswith(".py")]
    focus: Set[str] = set()
    for ctx in contexts:
        for path in changed:
            # Git paths are repo-relative, context relpaths are
            # package-relative — match on the common suffix.
            if path.endswith("/" + ctx.relpath) or path == ctx.relpath:
                focus.add(ctx.relpath)
    return focus


def analyze_paths(paths: Sequence[Path],
                  baseline: Optional[Set[str]] = None,
                  cache_dir: Optional[Path] = None,
                  changed_only: bool = False,
                  repo_dir: Optional[Path] = None) -> AnalysisReport:
    report = AnalysisReport()
    baseline = baseline or set()
    contexts, findings, report.files_scanned = _collect_contexts(paths)
    focus: Optional[Set[str]] = None
    if changed_only:
        focus = _changed_relpaths(contexts, repo_dir=repo_dir)
    findings.extend(analyze_contexts(contexts, cache_dir=cache_dir,
                                     focus=focus))
    for finding in findings:
        if finding.matches(baseline):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.findings.sort()
    report.baselined.sort()
    return report


def _render_text(report: AnalysisReport, out) -> None:
    for finding in report.findings:
        print(finding.render(), file=out)
    summary = (
        f"replint: {report.files_scanned} files, "
        f"{len(report.errors)} errors, "
        f"{len(report.findings) - len(report.errors)} warnings"
    )
    if report.baselined:
        summary += f", {len(report.baselined)} baselined"
    print(summary, file=out)


def _render_json(report: AnalysisReport, out) -> None:
    payload = {
        "files_scanned": report.files_scanned,
        "findings": [vars(f) for f in report.findings],
        "baselined": [f.hashed_key for f in report.baselined],
    }
    print(json.dumps(payload, indent=2), file=out)


def _rule_descriptions() -> Dict[str, str]:
    described = {
        "RPL000": "pragma-hygiene: replint pragmas must parse and carry "
                  "a justification",
    }
    for checker in all_checkers() + all_program_checkers():
        described[checker.rule_id] = \
            f"{checker.name}: {checker.description}"
    return described


def _list_rules(out) -> None:
    from repro.analysis.query.rules import query_rule_descriptions

    described = dict(_rule_descriptions())
    described.update(query_rule_descriptions())
    for rule_id, text in sorted(described.items()):
        print(f"{rule_id} {text}", file=out)


#: RPL000 has no checker class (pragma hygiene is enforced inside
#: ModuleContext), so its --explain entry lives here.
_RPL000_EXPLAIN = (
    "pragma-hygiene",
    "replint pragmas must parse and carry a justification",
    "page = pool.fetch(pid)  # replint: ignore[RPL010]\n"
    "# RPL000: an escape hatch without a reason is itself a violation",
    "append ' -- <reason>' to every pragma:\n"
    "page = pool.fetch(pid)"
    "  # replint: ignore[RPL010] -- handed to caller",
)


def _explain(rule_id: str, out) -> int:
    """Describe one rule: what it checks, a failing example, the fix."""
    from repro.analysis.query.rules import QUERY_REGISTRY
    from repro.analysis.rules import _PROGRAM_REGISTRY, _REGISTRY

    if rule_id == "RPL000":
        name, description, example, fix = _RPL000_EXPLAIN
    else:
        cls = (_REGISTRY.get(rule_id) or _PROGRAM_REGISTRY.get(rule_id)
               or QUERY_REGISTRY.get(rule_id))
        if cls is None:
            print(f"replint: unknown rule: {rule_id} "
                  f"(see --list-rules)", file=out)
            return 2
        name, description = cls.name, cls.description
        example, fix = cls.example, cls.fix
    print(f"{rule_id} — {name}", file=out)
    print(f"  {description}", file=out)
    print(file=out)
    print("example:", file=out)
    for line in example.splitlines():
        print(f"    {line}", file=out)
    print(file=out)
    print("fix:", file=out)
    for line in fix.splitlines():
        print(f"    {line}", file=out)
    return 0


def _dump_graph(which: str, paths: Sequence[Path], out,
                cache_dir: Optional[Path] = None) -> int:
    from repro.analysis.dataflow import Program

    contexts, findings, _ = _collect_contexts(paths)
    if findings:
        for finding in findings:
            print(finding.render(), file=out)
        return 2
    program = Program({ctx.relpath: ctx for ctx in contexts},
                      cache_dir=cache_dir)
    if which == "calls":
        print(program.call_graph_dot(), file=out, end="")
    else:
        print(program.latch_graph_dot(), file=out, end="")
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    arguments = list(sys.argv[1:] if argv is None else argv)
    if "--queries" in arguments:
        # Query-level lint (rqlint) has its own option surface; hand
        # the remaining arguments over wholesale.
        from repro.analysis.query.driver import run_query_lint

        arguments.remove("--queries")
        return run_query_lint(arguments, out=out)
    argv = arguments
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="replint: AST + dataflow invariant checks for the "
                    "repro tree",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint "
                             "(default: the repro package)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: ./{DEFAULT_BASELINE} "
                             f"when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default=None, dest="format",
                        help="output format (default: text)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output "
                             "(alias for --format json)")
    parser.add_argument("--graph", choices=("calls", "latches"),
                        default=None,
                        help="dump the call graph / latch-order graph "
                             "as DOT and exit")
    parser.add_argument("--changed", action="store_true",
                        help="scope analysis to files in 'git diff HEAD' "
                             "(plus untracked files) and their call-graph "
                             "neighbors; falls back to a full run when "
                             "git is unavailable")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="directory for parsed-summary cache artifacts "
                             "(keyed on a source digest; safe to share "
                             "across runs)")
    parser.add_argument("--queries", action="store_true",
                        help="run rqlint (query-level merge-class "
                             "certification) over .sql corpora instead "
                             "of the Python rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--explain", metavar="RPL0NN", default=None,
                        help="print one rule's description, a minimal "
                             "failing example, and the fix pattern, "
                             "then exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(out)
        return 0
    if args.explain is not None:
        return _explain(args.explain.upper(), out)

    output_format = args.format or ("json" if args.as_json else "text")

    paths = list(args.paths) or [package_root()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        # A typo'd path must not read as "0 findings" in CI.
        for path in missing:
            print(f"replint: no such path: {path}", file=out)
        return 2

    if args.graph is not None:
        return _dump_graph(args.graph, paths, out, cache_dir=args.cache_dir)

    baseline_path = args.baseline or Path(DEFAULT_BASELINE)
    try:
        baseline = load_baseline(baseline_path)
    except AnalysisError as exc:
        print(f"replint: {exc}", file=out)
        return 2
    report = analyze_paths(paths, baseline, cache_dir=args.cache_dir,
                           changed_only=args.changed)

    if args.write_baseline:
        save_baseline(baseline_path, report.findings + report.baselined)
        print(f"replint: wrote {baseline_path} "
              f"({len(report.findings) + len(report.baselined)} entries)",
              file=out)
        return 0

    if output_format == "json":
        _render_json(report, out)
    elif output_format == "sarif":
        print(render_sarif(report, _rule_descriptions()), file=out, end="")
    else:
        _render_text(report, out)
    return 0 if report.ok else 1
