"""Findings model for replint.

A :class:`Finding` pins one rule violation to a file, line and enclosing
symbol.  Findings are value objects: checkers yield them, the driver
filters them (pragmas, baseline) and renders them.

Baselines
---------
A baseline file accepts a set of *known* findings so a new rule can land
before every historical violation is fixed.  Entries key on
``rule:file:symbol`` — deliberately **not** on line numbers, which churn
on every edit.  Newly written baselines append ``#<hash>``, a content
hash of the *enclosing function's* source, so an entry survives edits
anywhere else in the file but expires the moment the flagged function
itself changes.  Hashless (v1) entries still match for compatibility.
The repository policy (see README) is an empty baseline: real
violations are fixed or carry a justified pragma instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Set

from repro.errors import AnalysisError

#: severity levels; only ERROR findings fail the run
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    file: str        #: package-relative posix path (baseline-stable)
    line: int
    rule: str        #: rule id, e.g. "RPL010"
    severity: str
    message: str
    hint: str = ""   #: how to fix (or legitimately suppress) it
    symbol: str = "" #: enclosing function/class qualname, "" at module level
    content_hash: str = ""  #: hash of the enclosing function's source

    @property
    def baseline_key(self) -> str:
        """v1 key: line-independent but content-independent too."""
        return f"{self.rule}:{self.file}:{self.symbol or '<module>'}"

    @property
    def hashed_key(self) -> str:
        """v2 key: expires when the enclosing function's body changes."""
        if self.content_hash:
            return f"{self.baseline_key}#{self.content_hash}"
        return self.baseline_key

    def matches(self, baseline: Set[str]) -> bool:
        return self.hashed_key in baseline or self.baseline_key in baseline

    def render(self) -> str:
        where = f"{self.file}:{self.line}"
        text = f"{where}: {self.rule} [{self.severity}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors


def load_baseline(path: Path) -> Set[str]:
    """Read a baseline file (JSON list of ``rule:file:symbol`` keys)."""
    if not path.exists():
        return set()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(data, list) or not all(
            isinstance(entry, str) for entry in data):
        raise AnalysisError(
            f"baseline {path} must be a JSON list of strings"
        )
    return set(data)


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    keys = sorted({finding.hashed_key for finding in findings})
    path.write_text(json.dumps(keys, indent=2) + "\n", encoding="utf-8")
