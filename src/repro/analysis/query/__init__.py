"""rqlint: query-level semantic analysis for the RQL dialect.

Where replint (:mod:`repro.analysis.rules`) checks the *implementation*
— pin discipline, lock order, protocol typestate — rqlint checks the
*queries*: it resolves each RQL mechanism invocation against a schema,
certifies its merge class (monoid / stored-row / concat /
interval-stitch / serial-only) and emits RQL100-106 diagnostics through
the same findings/baseline/pragma/SARIF machinery.  planlint
(:mod:`repro.analysis.query.planlint`) extends the pass to the *plans*:
RQL110-114 certify the cost-based planner's access paths against
declared ANALYZE statistics and the golden-plan corpus
(:mod:`repro.workloads.plans`).

Public surface:

* :func:`repro.analysis.query.mergeclass.certify_mechanism` — build a
  :class:`~repro.analysis.query.mergeclass.MergeCertificate` for one
  mechanism call; consumed load-bearingly by
  :class:`repro.core.parallel.ParallelExecutor`.
* :func:`repro.analysis.query.driver.run_query_lint` — lint the builtin
  workload corpus plus ``.sql`` files (the ``lint --queries`` surface).
"""

from repro.analysis.query.mergeclass import (  # noqa: F401
    CONCAT,
    INTERVAL_STITCH,
    MONOID,
    SERIAL_ONLY,
    STORED_ROW,
    MergeCertificate,
    certify_mechanism,
    classify_select,
)
from repro.analysis.query.planlint import (  # noqa: F401
    PlanCertificate,
    certify_plan,
    plan_corpus_findings,
)
from repro.analysis.query.rules import (  # noqa: F401
    QUERY_REGISTRY,
    query_rule_descriptions,
)
