"""Merge-class certification for RQL mechanism invocations.

Every mechanism run is, algebraically, a map over the Qs snapshot set
followed by a merge.  Whether that merge can be computed from
independent partitions depends on the mechanism *and* on what the Qq
actually does; this module decides it statically and issues a
:class:`MergeCertificate`:

===================  =====================================================
merge class          merge law
===================  =====================================================
``concat``           list concatenation in partition order (CollateData)
``monoid``           abelian-monoid fold, AVG via sum/count decomposition
                     (AggregateDataInVariable)
``stored-row``       per-group merge_stored_value / merge_avg_stored over
                     the hidden ``__avg_sum_i``/``__avg_cnt_i`` columns
                     (AggregateDataInTable)
``interval-stitch``  boundary stitching of adjacent per-partition
                     intervals (CollateDataIntoIntervals)
``serial-only``      no merge law exists; parallel execution refused
===================  =====================================================

The certificate also carries the query's read-set (tables, columns,
pushable predicates, index candidates) and the static ``[lo, hi]``
bounds of the Qs — the inputs ROADMAP's incremental-view and
cost-planner work need.  Diagnostics RQL100-106 ride along as
:class:`~repro.analysis.findings.Finding` objects.

``repro.core.parallel.ParallelExecutor`` consumes the certificate: it
looks its merge implementation up *by merge class* and raises
``MechanismError`` for ``serial-only`` (or a class that does not match
the mechanism), so a wrong certificate cannot silently merge wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AggregateError, ReproError
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.sql.semantic import (
    QsRange,
    QuerySummary,
    SchemaProvider,
    analyze_qs,
    resolve_select,
)

CONCAT = "concat"
MONOID = "monoid"
STORED_ROW = "stored-row"
INTERVAL_STITCH = "interval-stitch"
SERIAL_ONLY = "serial-only"

#: canonical mechanism name (lowered) -> merge class when certified
MECHANISM_CLASSES: Dict[str, str] = {
    "collatedata": CONCAT,
    "aggregatedatainvariable": MONOID,
    "aggregatedataintable": STORED_ROW,
    "collatedataintointervals": INTERVAL_STITCH,
}


@dataclass
class MergeCertificate:
    """Static verdict for one mechanism invocation."""

    mechanism: str
    merge_class: str
    qs: str = ""
    qq: str = ""
    read_tables: Tuple[str, ...] = ()
    read_columns: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    pushable_predicates: Tuple[str, ...] = ()
    non_pushable_predicates: Tuple[str, ...] = ()
    index_candidates: Tuple[Tuple[str, str], ...] = ()
    qs_lower: Optional[int] = None
    qs_upper: Optional[int] = None
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def mergeable(self) -> bool:
        return self.merge_class != SERIAL_ONLY

    def qs_range(self) -> str:
        return QsRange(self.qs_lower, self.qs_upper).describe()

    def summary_lines(self) -> List[str]:
        """Human-readable certificate (``.rqlint`` and EXPLAIN surface)."""
        lines = [f"mechanism {self.mechanism}: "
                 f"merge class {self.merge_class}"]
        lines.append(f"Qs range {self.qs_range()}")
        for table in self.read_tables:
            columns = ", ".join(self.read_columns.get(table, ()))
            lines.append(f"reads {table}({columns})")
        for text in self.pushable_predicates:
            lines.append(f"pushdown {text}")
        for text in self.non_pushable_predicates:
            lines.append(f"join predicate {text} (not pushable)")
        for table, column in self.index_candidates:
            lines.append(f"index candidate {table}({column})")
        for finding in self.findings:
            lines.append(
                f"{finding.rule} [{finding.severity}] {finding.message}")
        return lines


class _Certifier:
    """Single-use certification state for one mechanism invocation."""

    def __init__(self, mechanism: str, qs: str, qq: str,
                 schema: Optional[SchemaProvider],
                 file: str, line: int, symbol: str) -> None:
        canonical = mechanism.replace("_", "").lower()
        if canonical not in MECHANISM_CLASSES:
            raise AggregateError(f"unknown RQL mechanism {mechanism!r}")
        self.mechanism = mechanism
        self.canonical = canonical
        self.qs = qs
        self.qq = qq
        self.schema = schema
        self.file = file
        self.line = line
        self.symbol = symbol
        self.findings: List[Finding] = []
        self.serial_only = False

    def finding(self, rule: str, severity: str, message: str,
                hint: str = "", node=None) -> None:
        at = self.line
        node_line = getattr(node, "line", 0) if node is not None else 0
        if node_line > 1:
            at = self.line + node_line - 1
        self.findings.append(Finding(
            file=self.file, line=at, rule=rule, severity=severity,
            message=message, hint=hint, symbol=self.symbol,
        ))

    def refuse(self, rule: str, message: str, hint: str = "",
               node=None) -> None:
        self.serial_only = True
        self.finding(rule, ERROR, message, hint, node)

    # -- parsing -----------------------------------------------------------

    def parse_single_select(self, sql: str,
                            label: str) -> Optional[ast.Select]:
        try:
            statements = parse_sql(sql)
        except ReproError as exc:
            self.finding("RQL100", ERROR, f"{label} does not parse: {exc}")
            return None
        if len(statements) != 1:
            self.finding("RQL100", ERROR,
                         f"{label} must be a single statement, found "
                         f"{len(statements)}")
            return None
        statement = statements[0]
        if not isinstance(statement, ast.Select):
            self.finding("RQL100", ERROR,
                         f"{label} must be a SELECT statement, found "
                         f"{type(statement).__name__}")
            return None
        return statement

    # -- Qs ----------------------------------------------------------------

    def certify_qs(self) -> QsRange:
        select = self.parse_single_select(self.qs, "Qs")
        if select is None:
            return QsRange()
        issues, bounds = analyze_qs(select)
        for issue in issues:
            self.finding("RQL100", ERROR, issue.message, node=issue)
        if bounds.statically_empty:
            self.finding(
                "RQL103", WARNING,
                f"Qs snapshot range is statically empty "
                f"({bounds.describe()})",
                hint="the bounds exclude every snapshot id; check the "
                     "comparison directions")
        elif bounds.upper is None:
            # A missing lower bound is implicitly 1 (snapshot ids are
            # positive); only a missing *upper* bound grows without
            # limit as history accumulates.
            self.finding(
                "RQL103", WARNING,
                f"Qs snapshot range is unbounded ({bounds.describe()}): "
                "the Qq re-executes over the entire history",
                hint="bound snap_id with BETWEEN/>=/<= or suppress with "
                     "ignore[RQL103]")
        return bounds

    # -- Qq ----------------------------------------------------------------

    def certify_qq(self) -> Optional[QuerySummary]:
        select = self.parse_single_select(self.qq, "Qq")
        if select is None:
            return None
        if select.as_of is not None:
            self.finding(
                "RQL100", ERROR,
                "Qq must not contain AS OF: the mechanism rewriter pins "
                "each snapshot itself", node=select)
        if select.order_by or select.limit is not None:
            what = []
            if select.order_by:
                what.append("ORDER BY")
            if select.limit is not None:
                what.append("LIMIT")
            self.finding(
                "RQL105", WARNING,
                f"Qq contains {' and '.join(what)}: per-snapshot order "
                "is interleaved by the concat merge and LIMIT applies "
                "per snapshot, not overall",
                hint="sort/limit the result table instead", node=select)
        if self.schema is None:
            return None
        summary = resolve_select(select, self.schema)
        for issue in summary.issues:
            self.finding("RQL100", ERROR, issue.message, node=issue)
        for name in sorted(summary.stateful_functions):
            self.refuse(
                "RQL106",
                f"Qq calls stateful builtin {name}(): evaluation from "
                "concurrent partitions races on session state and "
                "breaks retrospection reproducibility",
                hint="set the worker knob outside the Qq", node=select)
        for name in sorted(summary.unknown_functions):
            self.finding(
                "RQL106", WARNING,
                f"Qq calls {name}(), which rqlint cannot prove "
                "deterministic (not a registered function at "
                "certification time)",
                hint="register the UDF before certifying", node=select)
        for predicate in summary.predicates:
            if predicate.index_candidate is not None:
                table, column = predicate.index_candidate
                self.finding(
                    "RQL104", WARNING,
                    f"pushable predicate {predicate.text} has no index "
                    f"leading with {table}.{column}: every snapshot "
                    "iteration full-scans the table",
                    hint=f"CREATE INDEX ... ON {table}({column})",
                    node=predicate)
        return summary

    # -- mechanism arguments -----------------------------------------------

    def certify_argument(self, arg, summary: Optional[QuerySummary]) -> None:
        from repro.core.aggregates import (
            make_cross_snapshot_aggregate,
            parse_col_func_pairs,
        )
        if self.canonical == "aggregatedatainvariable":
            try:
                make_cross_snapshot_aggregate(str(arg))
            except AggregateError as exc:
                self.refuse(
                    "RQL101",
                    f"agg_func is not an abelian monoid: {exc}",
                    hint="use MIN/MAX/SUM/COUNT/AVG or run serially")
            if summary is not None and summary.resolved \
                    and len(summary.outputs) != 1:
                self.finding(
                    "RQL100", ERROR,
                    f"AggregateDataInVariable needs a single-column Qq, "
                    f"found {len(summary.outputs)} columns")
        elif self.canonical == "aggregatedataintable":
            try:
                pairs = parse_col_func_pairs(arg)
            except AggregateError as exc:
                self.refuse(
                    "RQL102",
                    f"col_func_pairs is not stored-row mergeable: {exc}",
                    hint="restrict column functions to "
                         "min/max/sum/count/avg")
                return
            if summary is None or not summary.resolved:
                return
            names = {output.name.lower() for output in summary.outputs}
            for column, _func in pairs:
                if column.lower() not in names:
                    self.finding(
                        "RQL100", ERROR,
                        f"col_func_pairs names {column!r}, which the Qq "
                        "does not output")

    # -- entry -------------------------------------------------------------

    def run(self, arg) -> MergeCertificate:
        bounds = self.certify_qs()
        summary = self.certify_qq()
        self.certify_argument(arg, summary)
        merge_class = (SERIAL_ONLY if self.serial_only
                       else MECHANISM_CLASSES[self.canonical])
        certificate = MergeCertificate(
            mechanism=self.mechanism,
            merge_class=merge_class,
            qs=self.qs,
            qq=self.qq,
            qs_lower=bounds.lower,
            qs_upper=bounds.upper,
            findings=self.findings,
        )
        if summary is not None:
            certificate.read_tables = tuple(summary.tables)
            certificate.read_columns = {
                table: tuple(columns)
                for table, columns in summary.read_columns.items()
            }
            certificate.pushable_predicates = tuple(
                p.text for p in summary.predicates if p.pushable)
            certificate.non_pushable_predicates = tuple(
                p.text for p in summary.predicates if not p.pushable)
            certificate.index_candidates = tuple(summary.index_candidates)
        return certificate


def certify_mechanism(mechanism: str, qs: str, qq: str, arg=None,
                      schema: Optional[SchemaProvider] = None,
                      file: str = "<query>", line: int = 1,
                      symbol: str = "") -> MergeCertificate:
    """Certify one mechanism invocation.

    ``schema=None`` skips resolution (shape and argument checks still
    run) — the executor passes a :class:`~repro.sql.semantic.
    CatalogSchema`, the lint driver a :class:`~repro.sql.semantic.
    StaticSchema` built from corpus DDL.
    """
    certifier = _Certifier(mechanism, qs, qq, schema, file, line,
                           symbol or mechanism)
    return certifier.run(arg)


def classify_select(summary: QuerySummary) -> Tuple[str, str]:
    """(merge class, reason) for a bare SELECT used as a Qq.

    The EXPLAIN surface has no mechanism in hand, so this classifies
    the query itself: which mechanism families could merge it exactly.
    """
    if summary.stateful_functions:
        names = ", ".join(sorted(summary.stateful_functions))
        return SERIAL_ONLY, f"stateful function call: {names}"
    from repro.core.aggregates import SUPPORTED_AGGREGATES
    mergeable = True
    for call in summary.aggregate_calls:
        if call.distinct or call.name.lower() not in SUPPORTED_AGGREGATES:
            mergeable = False
            break
    if summary.aggregate_calls and not mergeable:
        return SERIAL_ONLY, "non-mergeable aggregate in select list"
    if summary.has_group_by:
        return STORED_ROW, "grouped aggregation merges by stored row"
    if summary.aggregate_calls:
        if all(output.kind == "aggregate" for output in summary.outputs) \
                and len(summary.outputs) == 1:
            return MONOID, "single scalar aggregate folds as a monoid"
        return STORED_ROW, "aggregates merge by stored row"
    return CONCAT, "plain row set concatenates (or interval-stitches)"
