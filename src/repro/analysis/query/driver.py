"""rqlint driver: lint RQL mechanism invocations in ``.sql`` corpora.

Entry points::

    python -m repro.cli lint --queries [paths...]   # via the main CLI
    lint_sql_source(...) / run_query_lint(...)      # programmatic / tests

A corpus file is plain SQL annotated with ``-- rqlint:`` comments:

* DDL statements (``CREATE TABLE`` / ``CREATE INDEX``) outside any case
  build the file's :class:`~repro.sql.semantic.StaticSchema` (SnapIds is
  always present — every Qs reads it);
* a **case directive** opens one mechanism invocation; the SQL that
  follows (until the next directive) is its Qq::

      -- rqlint: mechanism=CollateData qs="SELECT snap_id FROM SnapIds"
      SELECT DISTINCT l_userid, current_snapshot() FROM LoggedIn;

  ``arg="sum"`` supplies an AggregateDataInVariable aggregate,
  ``arg="online:sum,flags:count"`` an AggregateDataInTable pair list;
* **pragmas** suppress rules for the enclosing case (or, before any
  case, for the whole file) and must justify themselves after ``--``,
  mirroring replint's RPL000 convention::

      -- rqlint: ignore[RQL103] -- audits deliberately walk all history
      -- rqlint: mergeclass-exempt -- legacy report, runs serially

Every run also certifies the builtin golden corpus
(:mod:`repro.workloads.corpus`), so the paper's TPC-H and LoggedIn
query shapes are re-checked on each lint.  Exit status mirrors replint:
0 when no error-severity findings survive pragma and baseline
filtering, 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import PRAGMA_ALIASES
from repro.analysis.findings import (
    ERROR,
    AnalysisReport,
    Finding,
    load_baseline,
    save_baseline,
)
from repro.analysis.query.mergeclass import certify_mechanism
from repro.analysis.query.planlint import plan_corpus_findings
from repro.analysis.query.rules import query_rule_descriptions
from repro.analysis.sarif import render_sarif
from repro.errors import AnalysisError

DEFAULT_BASELINE = "rqlint.baseline"

_SQL_PRAGMA_RE = re.compile(r"^\s*--\s*rqlint:\s*(?P<body>.+?)\s*$")
_IGNORE_RE = re.compile(r"ignore\[(?P<rules>[A-Za-z0-9_,\s]+)\]")
_KEYVAL_RE = re.compile(r'(?P<key>\w+)=(?:"(?P<quoted>[^"]*)"'
                        r'|(?P<bare>\S+))')

#: SnapIds is implicitly in scope for every corpus file (the Qs reads it).
_SNAPIDS_DDL = ("CREATE TABLE SnapIds (snap_id INTEGER PRIMARY KEY, "
                "snap_ts TEXT, snap_name TEXT)")


class _Case:
    """One mechanism invocation parsed out of a corpus file."""

    def __init__(self, line: int, mechanism: str, qs: str,
                 arg: object, name: str) -> None:
        self.line = line          #: directive line (1-based)
        self.mechanism = mechanism
        self.qs = qs
        self.arg = arg
        self.name = name
        self.qq_lines: List[str] = []
        self.qq_start = line + 1  #: line the Qq text begins on
        self.suppressed: Set[str] = set()

    @property
    def qq(self) -> str:
        return "\n".join(self.qq_lines).strip().rstrip(";").strip()


def _parse_arg(text: str) -> object:
    """Directive ``arg=`` value -> mechanism argument.

    ``"sum"`` stays a string (AggregateDataInVariable); a ``:`` turns it
    into a pair list (``"online:sum,flags:count"``).
    """
    if ":" not in text:
        return text
    pairs = []
    for chunk in text.split(","):
        column, _, func = chunk.partition(":")
        pairs.append((column.strip(), func.strip()))
    return pairs


def _parse_pragma_rules(directive: str) -> Set[str]:
    rules: Set[str] = set()
    ignore = _IGNORE_RE.search(directive)
    if ignore is not None:
        rules.update(r.strip().upper()
                     for r in ignore.group("rules").split(",") if r.strip())
    for alias, rule in PRAGMA_ALIASES.items():
        if alias in directive:
            if isinstance(rule, tuple):
                rules.update(rule)
            else:
                rules.add(rule)
    return rules


class _SqlCorpus:
    """Parsed form of one annotated ``.sql`` file."""

    def __init__(self, relpath: str) -> None:
        self.relpath = relpath
        self.cases: List[_Case] = []
        self.ddl_lines: List[str] = []
        self.file_suppressed: Set[str] = set()
        self.findings: List[Finding] = []

    def _finding(self, line: int, message: str, hint: str = "") -> None:
        self.findings.append(Finding(
            file=self.relpath, line=line, rule="RQL100", severity=ERROR,
            message=message, hint=hint,
        ))

    def _open_case(self, lineno: int, body: str) -> None:
        fields: Dict[str, str] = {}
        for match in _KEYVAL_RE.finditer(body):
            value = match.group("quoted")
            if value is None:
                value = match.group("bare")
            fields[match.group("key").lower()] = value
        mechanism = fields.get("mechanism", "")
        qs = fields.get("qs", "")
        if not qs:
            self._finding(
                lineno, "rqlint case directive is missing qs=\"...\"",
                hint='-- rqlint: mechanism=CollateData qs="SELECT ..."')
        arg = _parse_arg(fields["arg"]) if "arg" in fields else None
        self.cases.append(_Case(
            lineno, mechanism, qs, arg,
            fields.get("name", f"case@{lineno}"),
        ))

    def _apply_pragma(self, lineno: int, body: str) -> None:
        directive, _, justification = body.partition("--")
        rules = _parse_pragma_rules(directive)
        if not rules:
            self._finding(
                lineno, "unrecognized rqlint pragma",
                hint="use '-- rqlint: ignore[RQLnnn] -- reason' or a "
                     "named alias (query-exempt, mergeclass-exempt)")
            return
        if not justification.strip():
            self._finding(
                lineno, "rqlint pragma without a justification",
                hint="append ' -- <why this is safe>' to the pragma")
            return
        if self.cases:
            self.cases[-1].suppressed.update(rules)
        else:
            self.file_suppressed.update(rules)

    def parse(self, source: str) -> "_SqlCorpus":
        for lineno, raw in enumerate(source.splitlines(), start=1):
            match = _SQL_PRAGMA_RE.match(raw)
            if match is not None:
                body = match.group("body")
                if "mechanism=" in body.partition("--")[0]:
                    self._open_case(lineno, body)
                else:
                    self._apply_pragma(lineno, body)
                continue
            if self.cases:
                self.cases[-1].qq_lines.append(raw)
            else:
                self.ddl_lines.append(raw)
        return self

    def schema(self):
        """StaticSchema from the file's DDL (plus the implicit SnapIds)."""
        from repro.sql.semantic import StaticSchema
        from repro.errors import ReproError

        schema = StaticSchema.from_ddl(_SNAPIDS_DDL)
        for name in ("current_snapshot", "snapshot_id", "rql_workers"):
            schema.add_function(name)
        ddl = "\n".join(self.ddl_lines).strip()
        if ddl:
            try:
                schema.add_ddl(ddl)
            except ReproError as exc:
                self._finding(1, f"corpus DDL does not parse: {exc}")
        return schema

    def certify(self) -> List[Finding]:
        """All (unsuppressed) findings for this file."""
        schema = self.schema()
        results = list(self.findings)
        for case in self.cases:
            if not case.qq:
                results.append(Finding(
                    file=self.relpath, line=case.line, rule="RQL100",
                    severity=ERROR, symbol=case.name,
                    message=f"case {case.name!r} has no Qq text",
                ))
                continue
            certificate = certify_mechanism(
                case.mechanism, case.qs, case.qq, arg=case.arg,
                schema=schema, file=self.relpath, line=case.qq_start,
                symbol=case.name,
            )
            muted = case.suppressed | self.file_suppressed
            results.extend(f for f in certificate.findings
                           if f.rule not in muted)
        return results


def lint_sql_source(source: str, relpath: str) -> List[Finding]:
    """Run rqlint over one corpus file's text (test entry point)."""
    return _SqlCorpus(relpath).parse(source).certify()


def iter_sql_files(root: Path) -> Iterable[Tuple[Path, str]]:
    if root.is_file():
        yield root, root.name
        return
    for path in sorted(root.rglob("*.sql")):
        yield path, path.relative_to(root).as_posix()


def _corpus_findings() -> Tuple[List[Finding], int]:
    """Re-certify the builtin golden corpus; only *drift* is reported.

    The corpus deliberately contains serial-only and warning entries —
    their expected findings are the golden data, not lint debt — so a
    run stays clean unless a verdict diverges from the recorded one.
    """
    from repro.workloads.corpus import CORPUS, certify_entry, corpus_schema

    schema = corpus_schema()
    findings: List[Finding] = []
    for entry in CORPUS:
        certificate = certify_entry(entry, schema=schema)
        got = tuple(sorted({f.rule for f in certificate.findings}))
        want = tuple(sorted(entry.expected_rules))
        if certificate.merge_class != entry.expected_class or got != want:
            findings.append(Finding(
                file=f"<corpus:{entry.name}>", line=1, rule="RQL100",
                severity=ERROR, symbol=entry.name,
                message=f"golden verdict drift: certified "
                        f"{certificate.merge_class!r} {got}, corpus "
                        f"expects {entry.expected_class!r} {want}",
                hint="update repro/workloads/corpus.py only with a "
                     "matching mergeclass change",
            ))
    return findings, len(CORPUS)


def analyze_query_paths(paths: Sequence[Path],
                        baseline: Optional[Set[str]] = None,
                        include_corpus: bool = True) -> AnalysisReport:
    report = AnalysisReport()
    baseline = baseline or set()
    findings: List[Finding] = []
    for root in paths:
        for path, relpath in iter_sql_files(root):
            report.files_scanned += 1
            source = path.read_text(encoding="utf-8")
            findings.extend(lint_sql_source(source, relpath))
    if include_corpus:
        corpus, entries = _corpus_findings()
        findings.extend(corpus)
        report.files_scanned += entries
        plans, plan_entries = plan_corpus_findings()
        findings.extend(plans)
        report.files_scanned += plan_entries
    for finding in findings:
        if finding.matches(baseline):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.findings.sort()
    report.baselined.sort()
    return report


def _render_text(report: AnalysisReport, out) -> None:
    for finding in report.findings:
        print(finding.render(), file=out)
    summary = (
        f"rqlint: {report.files_scanned} files/cases, "
        f"{len(report.errors)} errors, "
        f"{len(report.findings) - len(report.errors)} warnings"
    )
    if report.baselined:
        summary += f", {len(report.baselined)} baselined"
    print(summary, file=out)


def _render_json(report: AnalysisReport, out) -> None:
    payload = {
        "files_scanned": report.files_scanned,
        "findings": [vars(f) for f in report.findings],
        "baselined": [f.hashed_key for f in report.baselined],
    }
    print(json.dumps(payload, indent=2), file=out)


def run_query_lint(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.analysis --queries",
        description="rqlint: merge-class certification for RQL corpora",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help=".sql files/directories to lint (the builtin "
                             "workload corpus is always included)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: ./{DEFAULT_BASELINE} "
                             f"when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default=None, dest="format",
                        help="output format (default: text)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="alias for --format json")
    parser.add_argument("--no-corpus", action="store_true",
                        help="skip the builtin workload corpus")
    args = parser.parse_args(argv)

    paths = list(args.paths)
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"rqlint: no such path: {path}", file=out)
        return 2

    baseline_path = args.baseline or Path(DEFAULT_BASELINE)
    try:
        baseline = load_baseline(baseline_path)
    except AnalysisError as exc:
        print(f"rqlint: {exc}", file=out)
        return 2
    report = analyze_query_paths(paths, baseline,
                                 include_corpus=not args.no_corpus)

    if args.write_baseline:
        save_baseline(baseline_path, report.findings + report.baselined)
        print(f"rqlint: wrote {baseline_path} "
              f"({len(report.findings) + len(report.baselined)} entries)",
              file=out)
        return 0

    output_format = args.format or ("json" if args.as_json else "text")
    if output_format == "json":
        _render_json(report, out)
    elif output_format == "sarif":
        print(render_sarif(report, query_rule_descriptions(),
                           tool="rqlint"), file=out, end="")
    else:
        _render_text(report, out)
    return 0 if report.ok else 1
