"""RQL100-106 rule metadata.

rqlint rules are not :class:`~repro.analysis.rules.Checker` subclasses —
they fire from the certification pass in
:mod:`repro.analysis.query.mergeclass`, not from a per-module AST walk —
but they carry the same metadata surface (``rule_id``/``name``/
``description``/``example``/``fix``) so ``lint --list-rules`` and
``lint --explain RQL1NN`` render them identically to the RPL rules.
"""

from __future__ import annotations

from typing import Dict, Iterable, Type

QUERY_REGISTRY: Dict[str, Type["QueryRule"]] = {}


def register(cls: Type["QueryRule"]) -> Type["QueryRule"]:
    QUERY_REGISTRY[cls.rule_id] = cls
    return cls


class QueryRule:
    """Metadata holder for one rqlint diagnostic."""

    rule_id: str = "RQL100"
    name: str = ""
    description: str = ""
    example: str = ""
    fix: str = ""


@register
class QueryHygiene(QueryRule):
    rule_id = "RQL100"
    name = "query-hygiene"
    description = (
        "The query does not resolve against the schema or violates the "
        "mechanism's shape contract: unknown table or column, ambiguous "
        "unqualified column, Qq that is not a single SELECT or contains "
        "AS OF (the rewriter injects the snapshot pin itself), Qs that "
        "does not produce a single snapshot-id column, or a malformed / "
        "unjustified rqlint pragma."
    )
    example = (
        "-- rqlint: mechanism=CollateData\n"
        "SELECT userid FROM LoggedOut;   -- no such table: LoggedOut"
    )
    fix = (
        "Fix the query text (or the DDL preceding it in the corpus "
        "file); every rqlint pragma needs '-- reason' justification."
    )


@register
class NonMonoidAggregate(QueryRule):
    rule_id = "RQL101"
    name = "non-monoid-aggregate"
    description = (
        "AggregateDataInVariable folds one scalar per snapshot through "
        "a cross-snapshot aggregate, so the aggregate must be an "
        "abelian monoid (MIN/MAX/SUM/COUNT; AVG via the hidden "
        "sum/count decomposition).  GROUP_CONCAT, DISTINCT forms and "
        "arbitrary UDFs have no merge law: partition merges would "
        "depend on partition boundaries.  The query is certified "
        "serial-only and the parallel executor refuses it."
    )
    example = (
        "session.aggregate_data_in_variable(qs, qq, 'R',\n"
        "    agg_func='group_concat')   -- order-dependent, not a monoid"
    )
    fix = (
        "Use MIN/MAX/SUM/COUNT/AVG, or run the computation serially "
        "(workers=1) where a total snapshot order exists."
    )


@register
class NonMergeableColumnFunction(QueryRule):
    rule_id = "RQL102"
    name = "non-mergeable-column-function"
    description = (
        "AggregateDataInTable merges stored rows across partitions "
        "with merge_stored_value/merge_avg_stored, which exist only "
        "for MIN/MAX/SUM/COUNT/AVG.  Any other column function (or a "
        "DISTINCT form) makes the stored row non-mergeable: the "
        "partition seams would be visible in the result.  Certified "
        "serial-only."
    )
    example = (
        "session.aggregate_data_in_table(qs, qq, 'R',\n"
        "    col_func_pairs=[('val', 'group_concat')])"
    )
    fix = (
        "Restrict col_func_pairs to min/max/sum/count/avg, or collate "
        "the raw rows (CollateData) and aggregate afterwards."
    )


@register
class UnboundedSnapshotRange(QueryRule):
    rule_id = "RQL103"
    name = "unbounded-qs-range"
    description = (
        "The Qs has no static bounds on the snapshot ids it returns "
        "(or is statically empty).  An unbounded Qs re-executes the Qq "
        "over the entire snapshot history, which grows without limit; "
        "a statically empty range does no work and usually indicates "
        "inverted bounds.  The certificate records the derived "
        "[lo, hi] range for the planner."
    )
    example = (
        "SELECT snap_id FROM SnapIds ORDER BY snap_id  -- whole history"
    )
    fix = (
        "Bound the range: WHERE snap_id BETWEEN :lo AND :hi (or >=, "
        "<=, IN).  Suppress with '-- rqlint: ignore[RQL103] -- reason' "
        "when whole-history retrospection is intended."
    )


@register
class UnindexedPushdown(QueryRule):
    rule_id = "RQL104"
    name = "unindexed-pushdown"
    description = (
        "A single-table WHERE conjunct is pushable into the "
        "per-snapshot scan but no index leads with its column, so "
        "every snapshot iteration full-scans the table — the cost "
        "multiplies by |Qs|, and cold snapshots pay it through the "
        "Retro SPT page-fetch path.  The certificate lists the "
        "(table, column) index candidates."
    )
    example = (
        "SELECT * FROM lineitem\n"
        "WHERE l_shipdate BETWEEN '1994-01-01' AND '1994-12-31'\n"
        "-- no index leads with l_shipdate: |Qs| full scans of lineitem"
    )
    fix = (
        "CREATE INDEX idx ON <table>(<column>) before the "
        "retrospection, or accept the scan with "
        "'-- rqlint: ignore[RQL104] -- reason'."
    )


@register
class OrderInsideQq(QueryRule):
    rule_id = "RQL105"
    name = "order-inside-qq"
    description = (
        "The Qq contains ORDER BY or LIMIT.  Each snapshot evaluates "
        "the Qq independently, so a per-snapshot sort buys nothing "
        "once a concat merge interleaves partitions, and LIMIT keeps "
        "the first N rows *per snapshot*, which is rarely what was "
        "meant.  Results stay correct (per-snapshot evaluation is "
        "identical serial or parallel) — this is a warning, not a "
        "refusal."
    )
    example = (
        "CollateData(qs, 'SELECT grp, val FROM events "
        "ORDER BY val LIMIT 3', 'R')"
    )
    fix = (
        "Move ORDER BY/LIMIT to the query that reads the collated "
        "result table; keep the Qq a plain filter/projection."
    )


@register
class NonDeterministicQq(QueryRule):
    rule_id = "RQL106"
    name = "non-deterministic-qq"
    description = (
        "The Qq calls a function rqlint cannot prove deterministic.  A "
        "stateful builtin (rql_workers mutates the session's worker "
        "knob) is an error and certifies serial-only: evaluating it "
        "from concurrent partitions races and breaks retrospection "
        "reproducibility.  A function that is merely unregistered at "
        "certification time is a warning — the executor will reject it "
        "at runtime if it truly does not exist."
    )
    example = (
        "CollateData(qs, 'SELECT grp FROM events "
        "WHERE rql_workers(4) > 0', 'R')"
    )
    fix = (
        "Set the worker count outside the Qq (session kwarg, "
        ".workers, RQL_WORKERS); register UDFs before certification "
        "so rqlint can see them."
    )


def query_rule_descriptions() -> Dict[str, str]:
    """rule id -> short description (SARIF / --list-rules surface)."""
    return {rule_id: f"{cls.name}: {cls.description}"
            for rule_id, cls in sorted(QUERY_REGISTRY.items())}


def all_query_rules() -> Iterable[Type[QueryRule]]:
    for _, cls in sorted(QUERY_REGISTRY.items()):
        yield cls
