"""planlint: static plan certification (RQL110-114).

Where mergeclass certification (:mod:`repro.analysis.query.mergeclass`)
answers *can this retrospective computation merge across partitions*,
plan certification answers *will the planner execute it the way we
recorded*.  :func:`certify_plan` plans one SELECT statically — the same
pure planner (:func:`repro.sql.planner.plan_from`) that execution and
``EXPLAIN`` use, driven by a :class:`~repro.sql.stats.StatsProvider`
instead of a live database — and checks the resulting
:class:`~repro.sql.planner.SelectPlan` tree:

* **RQL110 golden-plan drift** — the rendered plan no longer matches
  the checked-in golden lines (:mod:`repro.workloads.plans`).  Any
  cost-model or planner change must update the corpus deliberately.
* **RQL111 unindexed-at-scale** — a sargable conjunct has no supporting
  index and statistics say the scanned table is large.  The upgrade of
  RQL104: the old rule fired on shape alone, this one only once ANALYZE
  proves the scan is expensive.
* **RQL112 missing/stale statistics** — a planned table has no
  ``__rql_stats`` entry (the planner fell back to heuristics) or its
  statistics predate the latest declared snapshot.
* **RQL113 pushdown-missed** — a single-table conjunct survived into
  the plan's residual filter instead of being pushed into the
  per-snapshot ``Qs`` page iteration.  The honest planner always
  pushes; this certifies plans (including hand-built or deserialized
  ones) rather than trusting the planner.
* **RQL114 cost-model sanity** — estimates are impossible: estimated
  rows exceed the table's cardinality (or are negative), or an index
  path was costed cheaper than a sequential scan for a predicate whose
  raw selectivity says it filters nothing.  Both arms are reachable
  through honest planning over *corrupt* statistics, which is exactly
  when a silent bad plan would otherwise ship.

Rules fire through the same findings/baseline/SARIF machinery as
RQL100-106; ``lint --queries`` re-certifies the golden-plan corpus on
every run (:func:`plan_corpus_findings`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.query.rules import QueryRule, register
from repro.errors import ReproError
from repro.sql import ast
from repro.sql.expressions import walk
from repro.sql.parser import parse_sql
from repro.sql.planner import SelectPlan, plan_select_static, render_plan
from repro.sql.semantic import render_expr, resolve_select
from repro.sql.stats import EmptyStats, StatsProvider

#: RQL111 only fires once statistics prove the table is big enough for
#: the missing index to matter (SQLite's analysis_limit spirit).
SCALE_THRESHOLD = 1000


# ---------------------------------------------------------------------------
# Rule metadata (lint --list-rules / --explain)
# ---------------------------------------------------------------------------


@register
class GoldenPlanDrift(QueryRule):
    rule_id = "RQL110"
    name = "golden-plan-drift"
    description = (
        "The statically planned access path for a golden-plan corpus "
        "entry no longer matches its checked-in rendering.  Plans are "
        "certifiable artifacts: a cost-model tweak that silently flips "
        "a seq scan to an index probe (or reorders a join) changes "
        "Pagelog traffic for every retrospective query, so the drift "
        "gate fails until the corpus is updated deliberately."
    )
    example = (
        "# repro/workloads/plans.py pins\n"
        "#   SEARCH orders USING INDEX __pk_orders (=)\n"
        "# but after a cost-constant change the planner renders\n"
        "#   SCAN orders"
    )
    fix = (
        "Re-record the entry's golden lines in repro/workloads/plans.py "
        "in the same change that alters the planner or cost model, and "
        "say why in the commit message."
    )


@register
class UnindexedAtScale(QueryRule):
    rule_id = "RQL111"
    name = "unindexed-at-scale"
    description = (
        "A sargable WHERE conjunct (col = const, range, BETWEEN, IN) "
        "has no index whose leading column supports it, the planned "
        "access path is a full scan, and ANALYZE statistics put the "
        "table at or above the scale threshold.  Unlike RQL104 (shape "
        "only), this fires only when statistics prove every snapshot "
        "in the Qs range pays the full sequential page cost."
    )
    example = (
        "-- lineitem ANALYZEd at 6000 rows; no index leads l_quantity\n"
        "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 24"
    )
    fix = (
        "CREATE INDEX <name> ON <table> (<column>) before the "
        "retrospective run, or accept the scan with\n"
        "-- rqlint: ignore[RQL111] -- <reason>"
    )


@register
class StaleStatistics(QueryRule):
    rule_id = "RQL112"
    name = "stale-statistics"
    description = (
        "A planned table has no ANALYZE statistics at all (the planner "
        "silently fell back to its fixed heuristics) or its newest "
        "statistics were gathered at a snapshot older than the latest "
        "declared one, so cost estimates describe a database that no "
        "longer exists."
    )
    example = (
        "-- orders last ANALYZEd at snapshot 2; latest snapshot is 5\n"
        "SELECT * FROM orders WHERE o_orderkey = 7"
    )
    fix = (
        "Run ANALYZE (or ANALYZE <table>) after loading data and after "
        "each DECLARE SNAPSHOT burst that changes table sizes."
    )


@register
class PushdownMissed(QueryRule):
    rule_id = "RQL113"
    name = "pushdown-missed"
    description = (
        "A conjunct that references a single FROM table was left in "
        "the plan's residual filter instead of being consumed by the "
        "access path or pushed to that table's prefix.  Every residual "
        "evaluation happens after row assembly, so the per-snapshot Qs "
        "iteration fetches Pagelog pages the pushed filter would have "
        "skipped.  The honest planner always pushes; this certifies "
        "the plan artifact itself."
    )
    example = (
        "SelectPlan(steps=[scan t], residual=[t.n > 5])\n"
        "# t.n > 5 resolves against t alone: it belongs in steps[0]"
    )
    fix = (
        "Replan with repro.sql.planner.plan_from rather than editing "
        "SelectPlan trees by hand; a planner that produces this plan "
        "has a pushdown bug."
    )


@register
class CostModelSanity(QueryRule):
    rule_id = "RQL114"
    name = "cost-model-sanity"
    description = (
        "The plan's estimates are impossible: a step's estimated rows "
        "exceed the table's own cardinality or are negative, or an "
        "index path was chosen for a predicate whose raw selectivity "
        "is >= 1.0 (it filters nothing, so the index probe can only "
        "add cost).  Both happen with corrupt statistics — reversed "
        "min/max domains, page counts from a different table — which "
        "otherwise produce silently terrible plans."
    )
    example = (
        "-- __rql_stats rows claim 10 rows across 10000 pages, so the\n"
        "-- planner picks an index probe for a filter-nothing predicate\n"
        "SEARCH orders USING INDEX __pk_orders (range)  -- sel 1.0"
    )
    fix = (
        "Re-run ANALYZE to replace the corrupt statistics; if they "
        "were declared (DeclaredStats), fix the declaration."
    )


# ---------------------------------------------------------------------------
# Certification
# ---------------------------------------------------------------------------


@dataclass
class PlanCertificate:
    """The checkable result of statically planning one SELECT."""

    sql: str
    select: Optional[ast.Select] = None
    plan: Optional[SelectPlan] = None
    rendering: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)

    @property
    def rules(self) -> Tuple[str, ...]:
        return tuple(sorted({f.rule for f in self.findings}))


def certify_plan(sql: str, schema, stats: Optional[StatsProvider] = None,
                 *, file: str = "<plan>", line: int = 1, symbol: str = "",
                 golden: Optional[Sequence[str]] = None,
                 latest_snapshot: Optional[int] = None,
                 plan: Optional[SelectPlan] = None) -> PlanCertificate:
    """Plan ``sql`` statically and certify the plan tree.

    ``schema`` is a :class:`~repro.sql.semantic.SchemaProvider`;
    ``stats`` a :class:`~repro.sql.stats.StatsProvider` (heuristic
    planning when omitted).  ``golden`` pins the expected rendering
    (RQL110); ``latest_snapshot`` enables the RQL112 staleness arm;
    ``plan`` substitutes a pre-built tree — the certification-of-
    artifacts path RQL113/RQL114 exist for — instead of replanning.
    """
    stats = stats if stats is not None else EmptyStats()
    certificate = PlanCertificate(sql=sql)

    def finding(rule: str, severity: str, message: str,
                hint: str = "") -> None:
        certificate.findings.append(Finding(
            file=file, line=line, rule=rule, severity=severity,
            message=message, hint=hint, symbol=symbol,
        ))

    try:
        statements = parse_sql(sql)
    except ReproError as exc:
        finding("RQL100", ERROR, f"plan query does not parse: {exc}")
        return certificate
    if len(statements) != 1 or not isinstance(statements[0], ast.Select):
        finding("RQL100", ERROR,
                "plan certification takes a single SELECT statement")
        return certificate
    select = statements[0]
    certificate.select = select

    try:
        if plan is None:
            plan = plan_select_static(select, schema, stats)
            certificate.rendering = render_plan(select, schema, stats)
        else:
            certificate.rendering = plan.access_notes() + plan.cost_notes()
    except ReproError as exc:
        finding("RQL100", ERROR, f"plan query does not plan: {exc}")
        return certificate
    certificate.plan = plan

    _check_golden(certificate, golden, finding)
    _check_statistics(plan, stats, latest_snapshot, finding)
    _check_unindexed_at_scale(select, schema, stats, plan, finding)
    _check_pushdown(plan, finding)
    _check_cost_sanity(plan, stats, finding)
    return certificate


def _check_golden(certificate: PlanCertificate,
                  golden: Optional[Sequence[str]], finding) -> None:
    if golden is None:
        return
    got, want = list(certificate.rendering), list(golden)
    if got == want:
        return
    for position, (g, w) in enumerate(zip(got, want)):
        if g != w:
            finding("RQL110", ERROR,
                    f"golden plan drift at line {position + 1}: "
                    f"planned {g!r}, corpus expects {w!r}",
                    hint="update the golden lines in "
                         "repro/workloads/plans.py only with a "
                         "matching planner change")
            return
    finding("RQL110", ERROR,
            f"golden plan drift: planned {len(got)} lines, corpus "
            f"expects {len(want)}",
            hint="update the golden lines in repro/workloads/plans.py "
                 "only with a matching planner change")


def _check_statistics(plan: SelectPlan, stats: StatsProvider,
                      latest_snapshot: Optional[int], finding) -> None:
    seen: Set[str] = set()
    for step in plan.steps:
        table = step.desc.table.lower()
        if table in seen:
            continue
        seen.add(table)
        table_stats = stats.table_stats(table)
        if table_stats is None:
            finding("RQL112", WARNING,
                    f"no statistics for planned table {step.desc.table}; "
                    f"access paths fell back to heuristics",
                    hint=f"ANALYZE {step.desc.table}")
        elif (latest_snapshot is not None
                and table_stats.snapshot_id < latest_snapshot):
            finding("RQL112", WARNING,
                    f"stale statistics for {step.desc.table}: gathered "
                    f"at snapshot {table_stats.snapshot_id}, latest "
                    f"declared is {latest_snapshot}",
                    hint=f"re-run ANALYZE {step.desc.table}")


def _check_unindexed_at_scale(select: ast.Select, schema,
                              stats: StatsProvider, plan: SelectPlan,
                              finding) -> None:
    try:
        summary = resolve_select(select, schema)
    except ReproError:
        return
    if not summary.resolved:
        return
    scanned = {
        step.desc.table.lower()
        for step in plan.steps
        if (step.access is not None and step.access.kind == "scan")
        or (step.join is not None and step.join.kind in ("auto", "cross"))
    }
    reported: Set[Tuple[str, str]] = set()
    for predicate in summary.predicates:
        if not predicate.pushable or predicate.index_candidate is None:
            continue
        table, column = predicate.index_candidate
        key = (table.lower(), column.lower())
        if key in reported or table.lower() not in scanned:
            continue
        table_stats = stats.table_stats(table)
        if table_stats is None or table_stats.row_count < SCALE_THRESHOLD:
            continue
        reported.add(key)
        finding("RQL111", WARNING,
                f"sargable predicate {predicate.text} scans {table} "
                f"({table_stats.row_count} rows at snapshot "
                f"{table_stats.snapshot_id}); no index leads with "
                f"{column}",
                hint=f"CREATE INDEX {table}_{column} ON {table} "
                     f"({column})")


def _check_pushdown(plan: SelectPlan, finding) -> None:
    scopes = [(step.desc.binding, step.desc.scope())
              for step in plan.steps]

    def single_binding(expr: ast.Expr) -> Optional[str]:
        owners: Set[str] = set()
        for node in walk(expr):
            if not isinstance(node, ast.ColumnRef):
                continue
            owner = next((binding for binding, scope in scopes
                          if scope.try_resolve(node) is not None), None)
            if owner is None:
                return None
            owners.add(owner)
        return owners.pop() if len(owners) == 1 else None

    for residual in plan.residual:
        binding = single_binding(residual)
        if binding is None:
            continue
        finding("RQL113", ERROR,
                f"pushdown missed: {render_expr(residual)} references "
                f"only {binding} but remains a residual filter, so the "
                f"per-snapshot Qs iteration fetches pages it would "
                f"have skipped",
                hint="replan with repro.sql.planner.plan_from; "
                     "hand-edited plan trees lose their certification")


def _check_cost_sanity(plan: SelectPlan, stats: StatsProvider,
                       finding) -> None:
    for step in plan.steps:
        if not step.costed:
            continue
        table_stats = stats.table_stats(step.desc.table)
        if table_stats is not None and step.est_rows is not None:
            if step.est_rows < 0:
                finding("RQL114", ERROR,
                        f"cost-model sanity: {step.desc.binding} "
                        f"estimates {step.est_rows:g} rows (negative); "
                        f"statistics are corrupt",
                        hint="re-run ANALYZE to replace the corrupt "
                             "statistics")
                continue
            if step.est_rows > table_stats.row_count:
                finding("RQL114", ERROR,
                        f"cost-model sanity: {step.desc.binding} "
                        f"estimates {step.est_rows:g} rows but the "
                        f"table holds {table_stats.row_count}",
                        hint="re-run ANALYZE to replace the corrupt "
                             "statistics")
                continue
        if (step.access is not None and step.access.kind != "scan"
                and step.selectivity is not None
                and step.selectivity >= 1.0):
            finding("RQL114", ERROR,
                    f"cost-model sanity: {step.desc.binding} chose "
                    f"index path {step.path_desc} for a predicate with "
                    f"raw selectivity {step.selectivity:g} (filters "
                    f"nothing); an index probe can only add cost",
                    hint="re-run ANALYZE to replace the corrupt "
                         "statistics")


# ---------------------------------------------------------------------------
# Golden-plan corpus gate
# ---------------------------------------------------------------------------


def plan_corpus_findings() -> Tuple[List[Finding], int]:
    """Re-certify the golden-plan corpus; only *drift* is reported.

    Mirrors the mergeclass corpus gate: entries deliberately carry
    expected RQL11N rules (those are golden data, not lint debt), so a
    run stays clean unless the rendering or the rule set diverges from
    what :mod:`repro.workloads.plans` records.
    """
    from repro.workloads.plans import (
        PLAN_CORPUS,
        certify_plan_entry,
        plan_schema,
    )

    schema = plan_schema()
    findings: List[Finding] = []
    for entry in PLAN_CORPUS:
        certificate = certify_plan_entry(entry, schema=schema)
        drift = [f for f in certificate.findings if f.rule == "RQL110"]
        findings.extend(drift)
        got = tuple(sorted({f.rule for f in certificate.findings
                            if f.rule != "RQL110"}))
        want = tuple(sorted(entry.expected_rules))
        if got != want:
            findings.append(Finding(
                file=f"<plans:{entry.name}>", line=1, rule="RQL110",
                severity=ERROR, symbol=entry.name,
                message=f"golden rule-set drift: certified {got}, "
                        f"corpus expects {want}",
                hint="update repro/workloads/plans.py only with a "
                     "matching planner change",
            ))
    return findings, len(PLAN_CORPUS)
