"""The whole-program view the interprocedural rules are written against.

:class:`Program` bundles the module contexts, the call graph, one CFG
per function, and the function summaries.  Summaries are computed by
chaotic iteration: every function is (re-)summarized with the current
summaries of its callees until nothing changes.  All summary domains
are finite and grow monotonically, so the loop terminates; in practice
the repository converges in a handful of passes.

Summaries can be persisted to a cache directory keyed on a digest of
every analyzed source file, which lets CI skip the fixpoint entirely
when nothing changed (the per-function evidence pass still runs — it
is a single sweep and needs the ASTs anyway).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.dataflow.callgraph import CallGraph, FunctionInfo
from repro.analysis.dataflow.cfg import CFG, build_cfg
from repro.analysis.dataflow.effects import EffectsIndex
from repro.analysis.dataflow.summaries import (
    FunctionResult, FunctionSummary, LockEdge, _LockIndex, summarize,
)

_MAX_PASSES = 50

#: Bumped whenever the summary schema or any summary-producing pass
#: changes meaning.  Folded into the cache digest *and* checked against
#: the payload, so summaries written by an older replint are never
#: deserialized into the new schema with silently-empty fields.
ANALYSIS_VERSION = 3


class Program:
    """Call graph + CFGs + converged summaries for one set of modules."""

    def __init__(self, contexts: Dict[str, ModuleContext],
                 cache_dir: Optional[Path] = None,
                 focus: Optional[Iterable[str]] = None) -> None:
        self.contexts = contexts
        self.graph = CallGraph(contexts)
        self._cfgs: Dict[str, CFG] = {}
        self._lock_index = _LockIndex(self.graph)
        self.summaries: Dict[str, FunctionSummary] = {}
        self.results: Dict[str, FunctionResult] = {}
        self.passes = 0
        self.cache_hit = False
        self.focus = set(focus) if focus is not None else None
        self._focus_scope: Optional[set] = None
        self._effects: Optional[EffectsIndex] = None
        self._solve(cache_dir)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_contexts(cls, contexts: Iterable[ModuleContext],
                      cache_dir: Optional[Path] = None,
                      focus: Optional[Iterable[str]] = None) -> "Program":
        return cls({ctx.relpath: ctx for ctx in contexts},
                   cache_dir=cache_dir, focus=focus)

    @property
    def effects(self) -> EffectsIndex:
        """Lazily-built thread-escape / entry-lock index."""
        if self._effects is None:
            self._effects = EffectsIndex(self.graph, self.summaries,
                                         self._lock_index)
        return self._effects

    def focus_scope(self) -> Optional[set]:
        """Focus modules plus their direct call-graph neighbors.

        ``None`` means no focus was requested — analyze everything.
        """
        if self.focus is None:
            return None
        if self._focus_scope is None:
            scope = set(self.focus)
            # A protocol-spec edit changes what the typestate rules mean
            # for every implementing class: widen the focus to all
            # modules defining a protocol class or origin function.
            if any(module.endswith("analysis/protocols.py")
                   for module in self.focus):
                from repro.analysis.protocols import implementing_modules

                scope |= implementing_modules(self.contexts)
            for func in self.graph.functions.values():
                for site in self.graph.sites_in(func):
                    for target in site.targets:
                        if func.module in scope:
                            scope.add(target.module)
                        if target.module in scope:
                            scope.add(func.module)
            self._focus_scope = scope
        return self._focus_scope

    def cfg(self, func: FunctionInfo) -> CFG:
        cached = self._cfgs.get(func.qualname)
        if cached is None:
            cached = build_cfg(func.node)
            self._cfgs[func.qualname] = cached
        return cached

    def digest(self) -> str:
        """Stable digest of every analyzed source file."""
        hasher = hashlib.sha256()
        hasher.update(f"v{ANALYSIS_VERSION}".encode())
        for relpath in sorted(self.contexts):
            ctx = self.contexts[relpath]
            hasher.update(relpath.encode())
            hasher.update(b"\0")
            hasher.update("\n".join(ctx.lines).encode())
            hasher.update(b"\0")
        return hasher.hexdigest()

    def _solve(self, cache_dir: Optional[Path]) -> None:
        cached = self._load_cache(cache_dir)
        if cached is not None:
            self.summaries = cached
            self.cache_hit = True
        else:
            self._fixpoint()
            self._store_cache(cache_dir)
        # Final evidence sweep with converged summaries.  Under a focus
        # (``lint --changed``) only functions in the focused modules and
        # their call-graph neighbors are re-swept; the converged
        # summaries for everything else are kept as-is so program-wide
        # rules still see a complete picture.
        scope = self.focus_scope()
        for qualname, func in self.graph.functions.items():
            if scope is not None and func.module not in scope:
                continue
            self.results[qualname] = summarize(
                func, self.cfg(func), self.graph, self.summaries,
                lock_index=self._lock_index)
            self.summaries[qualname] = self.results[qualname].summary

    def _fixpoint(self) -> None:
        functions = self.graph.functions
        self.summaries = {
            qualname: FunctionSummary(qualname=qualname)
            for qualname in functions
        }
        for _ in range(_MAX_PASSES):
            self.passes += 1
            changed = False
            for qualname, func in functions.items():
                result = summarize(func, self.cfg(func), self.graph,
                                   self.summaries,
                                   lock_index=self._lock_index)
                if result.summary != self.summaries[qualname]:
                    self.summaries[qualname] = result.summary
                    changed = True
            if not changed:
                break

    # -- summary cache -----------------------------------------------------

    def _cache_path(self, cache_dir: Path) -> Path:
        return cache_dir / f"replint-summaries-{self.digest()[:32]}.json"

    def _load_cache(self,
                    cache_dir: Optional[Path]
                    ) -> Optional[Dict[str, FunctionSummary]]:
        if cache_dir is None:
            return None
        path = self._cache_path(cache_dir)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("version") != ANALYSIS_VERSION:
            return None
        entries = payload.get("summaries")
        if not isinstance(entries, list):
            return None
        summaries: Dict[str, FunctionSummary] = {}
        try:
            for entry in entries:
                summary = FunctionSummary.from_dict(entry)
                summaries[summary.qualname] = summary
        except (KeyError, TypeError, ValueError):
            return None
        if set(summaries) != set(self.graph.functions):
            return None
        return summaries

    def _store_cache(self, cache_dir: Optional[Path]) -> None:
        if cache_dir is None:
            return
        try:
            cache_dir.mkdir(parents=True, exist_ok=True)
            payload = {
                "version": ANALYSIS_VERSION,
                "summaries": [
                    self.summaries[qualname].to_dict()
                    for qualname in sorted(self.summaries)
                ],
            }
            self._cache_path(cache_dir).write_text(
                json.dumps(payload, indent=0, sort_keys=True))
        except OSError:
            return  # caching is best-effort

    # -- graph views -------------------------------------------------------

    def lock_edges(self) -> List[LockEdge]:
        edges: List[LockEdge] = []
        for qualname in sorted(self.results):
            edges.extend(self.results[qualname].lock_edges)
        return edges

    def lock_cycles(self) -> List[Tuple[LockEdge, ...]]:
        """Every elementary cycle in the latch-order graph (deduped)."""
        adjacency: Dict[str, List[LockEdge]] = {}
        for edge in self.lock_edges():
            adjacency.setdefault(edge.held, []).append(edge)

        cycles: List[Tuple[LockEdge, ...]] = []
        seen: set = set()

        def visit(origin: str, node: str, path: List[LockEdge]) -> None:
            for edge in adjacency.get(node, []):
                if edge.acquired == origin:
                    cycle = tuple(path + [edge])
                    key = frozenset((e.held, e.acquired) for e in cycle)
                    if key not in seen:
                        seen.add(key)
                        cycles.append(cycle)
                elif all(edge.acquired != e.held for e in path) \
                        and edge.acquired > origin:
                    visit(origin, edge.acquired, path + [edge])

        for origin in sorted(adjacency):
            visit(origin, origin, [])
        return cycles

    def call_graph_dot(self) -> str:
        return self.graph.to_dot()

    def latch_graph_dot(self) -> str:
        lines = ["digraph latchorder {", '  rankdir="LR";',
                 '  node [shape=ellipse, fontsize=10];']
        acquired = {lock for result in self.results.values()
                    for lock in result.summary.acquires_locks}
        # Every latch *assigned* anywhere is a node, even if nothing in
        # the analyzed set orders it against another latch yet — the
        # graph must reflect the full latch inventory, not just edges.
        assigned = {
            f"{self.graph.classes[cls_qual].name}.{attr}"
            for (cls_qual, attr) in self._lock_index.assigned
        }
        nodes = sorted(acquired | assigned
                       | {lock for edge in self.lock_edges()
                          for lock in (edge.held, edge.acquired)})
        for lock in nodes:
            lines.append(f'  "{lock}";')
        deduped: Dict[Tuple[str, str], LockEdge] = {}
        for edge in self.lock_edges():
            deduped.setdefault((edge.held, edge.acquired), edge)
        for (held, acquired), edge in sorted(deduped.items()):
            lines.append(
                f'  "{held}" -> "{acquired}" '
                f'[label="{edge.func.split("::")[-1]}:{edge.line}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"
