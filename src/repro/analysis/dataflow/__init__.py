"""Interprocedural dataflow engine for replint.

Layers (bottom up):

* :mod:`repro.analysis.dataflow.cfg` — per-function control-flow graphs
  derived from the AST, with explicit exception edges;
* :mod:`repro.analysis.dataflow.lattice` — a forward dataflow framework
  (join-semilattice states + worklist solver over a CFG);
* :mod:`repro.analysis.dataflow.callgraph` — whole-program call graph
  with module-qualified resolution of functions, methods and the
  ``self.``-dispatch patterns used across storage/sql/core;
* :mod:`repro.analysis.dataflow.summaries` — per-function escape/alias
  summaries so facts propagate across call boundaries;
* :mod:`repro.analysis.dataflow.program` — the :class:`Program` facade
  the interprocedural rules (RPL010–RPL012) are written against.
"""

from repro.analysis.dataflow.cfg import CFG, CFGNode, build_cfg
from repro.analysis.dataflow.lattice import ForwardAnalysis, solve
from repro.analysis.dataflow.callgraph import CallGraph, CallSite
from repro.analysis.dataflow.summaries import FunctionSummary
from repro.analysis.dataflow.program import Program

__all__ = [
    "CFG",
    "CFGNode",
    "CallGraph",
    "CallSite",
    "ForwardAnalysis",
    "FunctionSummary",
    "Program",
    "build_cfg",
    "solve",
]
