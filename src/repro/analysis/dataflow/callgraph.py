"""Whole-program call graph over a set of analyzed modules.

Resolution strategy (module-qualified, best-effort, explicitly
conservative):

* module scopes are built from top-level *and* function-level imports
  plus locally defined classes/functions;
* ``self.meth()`` resolves through the enclosing class's linearized
  bases, **plus** every subclass override (dynamic dispatch is modelled
  by edges to all candidates);
* ``self.attr.meth()`` resolves through inferred attribute types:
  every ``self.attr = ClassName(...)`` in any method contributes
  ``ClassName`` to ``attr``'s type set;
* local variables pick up types from ``var = ClassName(...)``
  assignments and parameter annotations;
* ``super().meth()`` resolves into the base classes only.

Everything else becomes either an *external* site (builtins, stdlib,
container methods on externally-typed receivers) or a
*conservatively-unresolved* site (a computed callee that might target
program code — ``d[key]()``, unknown receiver types whose method name
exists somewhere in the program).  Unresolved sites matter: the rules
treat them as "unknown effects" (an escape for resource values, a
propagation barrier for taint).
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import ModuleContext

_BUILTIN_NAMES = frozenset(dir(builtins))

#: resolution outcomes for a call site
RESOLVED = "resolved"
EXTERNAL = "external"
UNRESOLVED = "unresolved"

#: sentinel class qualname for values of non-program (stdlib) types
EXTERNAL_TYPE = "<external>"


@dataclass
class FunctionInfo:
    """One function or method defined somewhere in the program."""

    qualname: str                 #: "storage/btree.py::BTree.insert"
    module: str                   #: package-relative module path
    name: str
    node: ast.AST                 #: FunctionDef / AsyncFunctionDef
    cls: Optional["ClassInfo"] = None

    @property
    def params(self) -> List[str]:
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args]

    @property
    def is_method(self) -> bool:
        return self.cls is not None and "." not in self.qualname.split(
            "::", 1)[1].replace(f"{self.cls.name}.", "", 1)


@dataclass
class ClassInfo:
    """One class defined in the program."""

    qualname: str                 #: "storage/buffer_pool.py::BufferPool"
    module: str
    name: str
    node: ast.ClassDef
    base_refs: List[str] = field(default_factory=list)  #: class qualnames
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> set of class qualnames (may include EXTERNAL_TYPE)
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    subclasses: Set[str] = field(default_factory=set)


@dataclass
class CallSite:
    """One syntactic call inside a program function."""

    caller: FunctionInfo
    call: ast.Call
    name: str                     #: best-effort callee name ("" if opaque)
    status: str                   #: RESOLVED / EXTERNAL / UNRESOLVED
    targets: List[FunctionInfo] = field(default_factory=list)
    reason: str = ""              #: why a site is unresolved


class _ModuleScope:
    """name -> ("class"|"func"|"module"|"extmodule"|"extname", payload)"""

    def __init__(self) -> None:
        self.names: Dict[str, Tuple[str, str]] = {}


def _module_path_candidates(dotted: str) -> List[str]:
    """Package-relative paths a dotted module name may correspond to."""
    parts = dotted.split(".")
    if parts and parts[0] == "repro":
        parts = parts[1:]
    if not parts:
        return ["__init__.py"]
    return ["/".join(parts) + ".py", "/".join(parts) + "/__init__.py"]


class CallGraph:
    """Functions, classes and resolved call sites of one program."""

    def __init__(self, contexts: Dict[str, ModuleContext]) -> None:
        self.contexts = contexts
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.scopes: Dict[str, _ModuleScope] = {}
        self.sites: List[CallSite] = []
        self._sites_by_caller: Dict[str, List[CallSite]] = {}
        self._site_by_call: Dict[int, CallSite] = {}
        self._build()

    # -- queries -----------------------------------------------------------

    def sites_in(self, func: FunctionInfo) -> List[CallSite]:
        return self._sites_by_caller.get(func.qualname, [])

    def site_for(self, call: ast.Call) -> Optional[CallSite]:
        return self._site_by_call.get(id(call))

    def edges(self) -> Iterable[Tuple[str, str]]:
        for site in self.sites:
            for target in site.targets:
                yield site.caller.qualname, target.qualname

    def unresolved_sites(self) -> List[CallSite]:
        return [s for s in self.sites if s.status == UNRESOLVED]

    def callees(self, qualname: str) -> Set[str]:
        return {
            t.qualname
            for s in self._sites_by_caller.get(qualname, [])
            for t in s.targets
        }

    def function_for_node(self, module: str,
                          node: ast.AST) -> Optional[FunctionInfo]:
        qual = self.contexts[module].qualname(node)
        return self.functions.get(f"{module}::{qual}")

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        for relpath, ctx in self.contexts.items():
            self._index_module(relpath, ctx)
        self._resolve_bases()
        self._infer_attr_types()
        self._resolve_calls()

    def _index_module(self, relpath: str, ctx: ModuleContext) -> None:
        scope = _ModuleScope()
        self.scopes[relpath] = scope

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = self._find_module(alias.name)
                    if target is not None and alias.asname:
                        scope.names[local] = ("module", target)
                    elif target is None:
                        scope.names[local] = ("extmodule", alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    as_module = self._find_module(f"{base}.{alias.name}")
                    from_module = self._find_module(base)
                    if from_module is not None:
                        scope.names[local] = (
                            "symbol", f"{from_module}::{alias.name}")
                    elif as_module is not None:
                        scope.names[local] = ("module", as_module)
                    else:
                        scope.names[local] = ("extname", alias.name)

        for node in ast.walk(ctx.tree):
            qual = ctx.qualname(node) if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef,
                       ast.ClassDef)) else None
            if isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    qualname=f"{relpath}::{qual}", module=relpath,
                    name=node.name, node=node,
                )
                self.classes[info.qualname] = info
                if "." not in (qual or ""):
                    scope.names[node.name] = ("class", info.qualname)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owner = self._owning_class(ctx, relpath, node)
                info = FunctionInfo(
                    qualname=f"{relpath}::{qual}", module=relpath,
                    name=node.name, node=node, cls=owner,
                )
                self.functions[info.qualname] = info
                if owner is not None and ctx.parent(node) is owner.node:
                    owner.methods[node.name] = info
                if "." not in (qual or ""):
                    scope.names[node.name] = ("func", info.qualname)

    def _owning_class(self, ctx: ModuleContext, relpath: str,
                      node: ast.AST) -> Optional[ClassInfo]:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function's self belongs to the method's class.
                continue
            if isinstance(ancestor, ast.ClassDef):
                return self.classes.get(
                    f"{relpath}::{ctx.qualname(ancestor)}")
            break
        return None

    def _find_module(self, dotted: str) -> Optional[str]:
        for candidate in _module_path_candidates(dotted):
            if candidate in self.contexts:
                return candidate
        return None

    def _lookup_scope(self, module: str,
                      name: str) -> Optional[Tuple[str, str]]:
        entry = self.scopes[module].names.get(name)
        if entry is None:
            return None
        if entry[0] == "symbol":
            target_module, symbol = entry[1].split("::", 1)
            resolved = self.scopes[target_module].names.get(symbol)
            if resolved is not None and resolved[0] in ("class", "func"):
                return resolved
            # Symbol imported from a package __init__ that re-exports it.
            for suffix in ("class", "func"):
                qual = f"{target_module}::{symbol}"
                if suffix == "class" and qual in self.classes:
                    return ("class", qual)
                if suffix == "func" and qual in self.functions:
                    return ("func", qual)
            return ("extname", name)
        return entry

    # -- class hierarchy ---------------------------------------------------

    def _resolve_bases(self) -> None:
        for cls in self.classes.values():
            for base in cls.node.bases:
                ref = self._class_ref(cls.module, base)
                if ref is not None:
                    cls.base_refs.append(ref)
        for cls in self.classes.values():
            for base_ref in self._all_bases(cls.qualname):
                base = self.classes.get(base_ref)
                if base is not None:
                    base.subclasses.add(cls.qualname)

    def _class_ref(self, module: str, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            entry = self._lookup_scope(module, expr.id)
            if entry is not None and entry[0] == "class":
                return entry[1]
        elif isinstance(expr, ast.Attribute) and isinstance(
                expr.value, ast.Name):
            entry = self._lookup_scope(module, expr.value.id)
            if entry is not None and entry[0] == "module":
                qual = f"{entry[1]}::{expr.attr}"
                if qual in self.classes:
                    return qual
        elif isinstance(expr, ast.Subscript):
            return self._class_ref(module, expr.value)  # Generic[...]
        return None

    def _all_bases(self, qualname: str) -> List[str]:
        """Transitive base classes, nearest first (linearized, cycles cut)."""
        out: List[str] = []
        seen = {qualname}
        stack = list(self.classes[qualname].base_refs) \
            if qualname in self.classes else []
        while stack:
            ref = stack.pop(0)
            if ref in seen:
                continue
            seen.add(ref)
            out.append(ref)
            cls = self.classes.get(ref)
            if cls is not None:
                stack.extend(cls.base_refs)
        return out

    def lookup_method(self, class_qual: str,
                      name: str) -> Optional[FunctionInfo]:
        for ref in [class_qual] + self._all_bases(class_qual):
            cls = self.classes.get(ref)
            if cls is not None and name in cls.methods:
                return cls.methods[name]
        return None

    def _override_targets(self, class_qual: str,
                          name: str) -> List[FunctionInfo]:
        """The statically-found method plus every subclass override."""
        targets: List[FunctionInfo] = []
        primary = self.lookup_method(class_qual, name)
        if primary is not None:
            targets.append(primary)
        cls = self.classes.get(class_qual)
        if cls is not None:
            for sub_ref in sorted(cls.subclasses):
                sub = self.classes.get(sub_ref)
                if sub is not None and name in sub.methods:
                    if sub.methods[name] not in targets:
                        targets.append(sub.methods[name])
        return targets

    # -- type inference ----------------------------------------------------

    def _infer_attr_types(self) -> None:
        for func in self.functions.values():
            cls = func.cls
            if cls is None:
                continue
            local = self._local_types(func, use_attrs=False)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        inferred = self._expr_class(func, node.value)
                        if not inferred and isinstance(
                                node.value, ast.Name):
                            # self.pool = pool  (annotated parameter)
                            inferred = local.get(node.value.id, set())
                        if inferred:
                            cls.attr_types.setdefault(
                                target.attr, set()).update(inferred)

    def _annotation_class(self, module: str,
                          annotation: Optional[ast.expr]) -> Set[str]:
        if annotation is None:
            return set()
        if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str):
            entry = self._lookup_scope(module, annotation.value)
        else:
            ref = self._class_ref(module, annotation)
            return {ref} if ref is not None else set()
        if entry is not None and entry[0] == "class":
            return {entry[1]}
        return set()

    def _local_types(self, func: FunctionInfo,
                     use_attrs: bool = True) -> Dict[str, Set[str]]:
        """var name -> possible class qualnames (flow-insensitive)."""
        types: Dict[str, Set[str]] = {}
        args = func.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            inferred = self._annotation_class(func.module, arg.annotation)
            if inferred:
                types[arg.arg] = set(inferred)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                inferred = self._expr_class(func, node.value)
                if not inferred and use_attrs and isinstance(
                        node.value, ast.Attribute):
                    # p = self.pool  (aliased self attribute)
                    inferred = self._self_attr_types(func, node.value)
                if inferred:
                    types.setdefault(node.targets[0].id, set()).update(
                        inferred)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name):
                inferred = self._annotation_class(func.module,
                                                  node.annotation)
                if inferred:
                    types.setdefault(node.target.id, set()).update(inferred)
        return types

    def _self_attr_types(self, func: FunctionInfo,
                         expr: ast.Attribute) -> Set[str]:
        """Types of a ``self.a.b`` attribute chain via inferred attrs."""
        chain: List[str] = []
        current: ast.expr = expr
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name) or current.id != "self" \
                or func.cls is None:
            return set()
        types: Set[str] = {func.cls.qualname}
        for attr in reversed(chain):
            found: Set[str] = set()
            for base in types:
                if base == EXTERNAL_TYPE:
                    found.add(EXTERNAL_TYPE)
                    continue
                for ref in [base] + self._all_bases(base):
                    owner = self.classes.get(ref)
                    if owner is not None and attr in owner.attr_types:
                        found.update(owner.attr_types[attr])
                        break
            types = found
        return types

    def _expr_class(self, func: FunctionInfo,
                    expr: ast.expr) -> Set[str]:
        """Class qualnames an expression's value may have (constructors)."""
        if isinstance(expr, ast.Call):
            callee = expr.func
            if isinstance(callee, ast.Name):
                entry = self._lookup_scope(func.module, callee.id)
                if entry is not None:
                    if entry[0] == "class":
                        return {entry[1]}
                    if entry[0] in ("extname", "extmodule"):
                        return {EXTERNAL_TYPE}
                if callee.id in _BUILTIN_NAMES:
                    return {EXTERNAL_TYPE}
            elif isinstance(callee, ast.Attribute) and isinstance(
                    callee.value, ast.Name):
                entry = self._lookup_scope(func.module, callee.value.id)
                if entry is not None and entry[0] == "module":
                    qual = f"{entry[1]}::{callee.attr}"
                    if qual in self.classes:
                        return {qual}
                if entry is not None and entry[0] == "extmodule":
                    return {EXTERNAL_TYPE}
        return set()

    def _receiver_types(self, func: FunctionInfo,
                        local_types: Dict[str, Set[str]],
                        expr: ast.expr) -> Set[str]:
        """Possible class qualnames of a method-call receiver."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and func.cls is not None:
                return {func.cls.qualname}
            found = set(local_types.get(expr.id, ()))
            entry = self._lookup_scope(func.module, expr.id)
            if entry is not None and entry[0] == "class":
                found.add(entry[1])   # unbound Class.method(...) access
            return found
        if isinstance(expr, ast.Attribute):
            base_types = self._receiver_types(func, local_types, expr.value)
            found: Set[str] = set()
            for base in base_types:
                if base == EXTERNAL_TYPE:
                    found.add(EXTERNAL_TYPE)
                    continue
                cls = self.classes.get(base)
                if cls is None:
                    continue
                for ref in [base] + self._all_bases(base):
                    owner = self.classes.get(ref)
                    if owner is not None and expr.attr in owner.attr_types:
                        found.update(owner.attr_types[expr.attr])
                        break
            return found
        if isinstance(expr, ast.Call):
            return self._expr_class(func, expr)
        return set()

    # -- call resolution ---------------------------------------------------

    def _resolve_calls(self) -> None:
        for func in self.functions.values():
            ctx = self.contexts[func.module]
            local_types = self._local_types(func)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                if ctx.enclosing_function(node) is not func.node:
                    continue
                site = self._resolve_call(func, local_types, node)
                self.sites.append(site)
                self._sites_by_caller.setdefault(
                    func.qualname, []).append(site)
                self._site_by_call[id(node)] = site

    def _resolve_call(self, func: FunctionInfo,
                      local_types: Dict[str, Set[str]],
                      call: ast.Call) -> CallSite:
        callee = call.func

        if isinstance(callee, ast.Name):
            return self._resolve_name_call(func, call, callee.id)

        if isinstance(callee, ast.Attribute):
            # super().meth(...)
            if isinstance(callee.value, ast.Call) and isinstance(
                    callee.value.func, ast.Name) \
                    and callee.value.func.id == "super" \
                    and func.cls is not None:
                targets = []
                for base_ref in self._all_bases(func.cls.qualname):
                    base = self.classes.get(base_ref)
                    if base is not None and callee.attr in base.methods:
                        targets = [base.methods[callee.attr]]
                        break
                return CallSite(func, call, callee.attr,
                                RESOLVED if targets else EXTERNAL,
                                targets)

            # module.func(...) via an imported module alias
            if isinstance(callee.value, ast.Name):
                entry = self._lookup_scope(func.module, callee.value.id)
                if entry is not None and entry[0] == "module":
                    qual = f"{entry[1]}::{callee.attr}"
                    if qual in self.functions:
                        return CallSite(func, call, callee.attr, RESOLVED,
                                        [self.functions[qual]])
                    if qual in self.classes:
                        return self._constructor_site(func, call, qual)
                    return CallSite(func, call, callee.attr, EXTERNAL)
                if entry is not None and entry[0] == "extmodule":
                    return CallSite(func, call, callee.attr, EXTERNAL)

            receiver_types = self._receiver_types(
                func, local_types, callee.value)
            targets: List[FunctionInfo] = []
            saw_external = False
            for rtype in sorted(receiver_types):
                if rtype == EXTERNAL_TYPE:
                    saw_external = True
                    continue
                targets.extend(
                    t for t in self._override_targets(rtype, callee.attr)
                    if t not in targets)
            if targets:
                return CallSite(func, call, callee.attr, RESOLVED, targets)
            if saw_external:
                return CallSite(func, call, callee.attr, EXTERNAL)
            if self._name_defined_in_program(callee.attr):
                return CallSite(
                    func, call, callee.attr, UNRESOLVED,
                    reason=f"receiver type of .{callee.attr}() is unknown")
            return CallSite(func, call, callee.attr, EXTERNAL)

        # Computed callee: d[key](), (f or g)(), lambda(...)(), ...
        return CallSite(func, call, "", UNRESOLVED,
                        reason="computed callee expression")

    def _resolve_name_call(self, func: FunctionInfo, call: ast.Call,
                           name: str) -> CallSite:
        # A locally nested def shadows the module scope.
        ctx = self.contexts[func.module]
        for node in ast.walk(func.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == name and node is not func.node:
                nested = self.function_for_node(func.module, node)
                if nested is not None:
                    return CallSite(func, call, name, RESOLVED, [nested])

        entry = self._lookup_scope(func.module, name)
        if entry is not None:
            if entry[0] == "func":
                return CallSite(func, call, name, RESOLVED,
                                [self.functions[entry[1]]])
            if entry[0] == "class":
                return self._constructor_site(func, call, entry[1])
            if entry[0] in ("extname", "extmodule", "module"):
                return CallSite(func, call, name, EXTERNAL)
        if name in _BUILTIN_NAMES:
            return CallSite(func, call, name, EXTERNAL)
        if self._name_defined_in_program(name):
            return CallSite(func, call, name, UNRESOLVED,
                            reason=f"{name} is not bound in module scope")
        return CallSite(func, call, name, EXTERNAL)

    def _constructor_site(self, func: FunctionInfo, call: ast.Call,
                          class_qual: str) -> CallSite:
        init = self.lookup_method(class_qual, "__init__")
        return CallSite(func, call, self.classes[class_qual].name,
                        RESOLVED if init is not None else EXTERNAL,
                        [init] if init is not None else [])

    def _name_defined_in_program(self, name: str) -> bool:
        if any(f.name == name for f in self.functions.values()):
            return True
        return any(c.name == name for c in self.classes.values())

    # -- DOT ----------------------------------------------------------------

    def to_dot(self) -> str:
        """The call graph as GraphViz DOT (deduped, stable order)."""
        lines = ["digraph callgraph {", '  rankdir="LR";',
                 '  node [shape=box, fontsize=10];']
        edges = sorted(set(self.edges()))
        names = sorted({q for edge in edges for q in edge}
                       | set(self.functions))
        for qual in names:
            lines.append(f'  "{qual}";')
        for src, dst in edges:
            lines.append(f'  "{src}" -> "{dst}";')
        for site in self.unresolved_sites():
            label = site.name or "<computed>"
            lines.append(
                f'  "{site.caller.qualname}" -> "?{label}" '
                f'[style=dashed, color=gray, '
                f'label="line {site.call.lineno}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"
