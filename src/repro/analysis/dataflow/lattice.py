"""Forward dataflow framework: join-semilattice states + worklist solver.

An analysis supplies a finite-height join-semilattice (states must be
hashable/comparable values; ``join`` must be commutative, associative,
idempotent) and a ``transfer`` function.  The solver iterates a
worklist over the CFG until the OUT-state of every node stabilizes,
recomputing each IN-state from its predecessors on every visit so that
non-monotone transfers (strong updates such as a resource release
closing every may-alias site) settle to their final value instead of
accumulating stale pessimistic joins.

Termination: every state domain used by replint is a finite powerset
(statuses per acquisition site, held lock ids, tainted variable names)
over sites/names drawn from the finite program text, so each node has
finitely many possible states and the chaotic iteration stabilizes in
practice as soon as the alias shape settles; a visit budget backstops
the theoretical possibility of oscillation.

Exceptional edges carry whatever :meth:`ForwardAnalysis.exc_state`
returns — the PRE-state by default (the statement raised before
completing), letting analyses opt specific statements into POST-state
propagation (e.g. a release call assumed to have taken effect).
"""

from __future__ import annotations

from typing import Dict, Generic, List, TypeVar

from repro.analysis.dataflow.cfg import CFG, CFGNode

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """One forward may-analysis over a single function CFG."""

    def initial(self, cfg: CFG) -> S:
        """State at function entry."""
        raise NotImplementedError

    def bottom(self) -> S:
        """State of an unreached node (identity of ``join``)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> S:
        """POST-state of executing ``node`` from ``state``."""
        raise NotImplementedError

    def exc_state(self, node: CFGNode, pre: S, post: S) -> S:
        """State propagated along ``node``'s exceptional out-edges."""
        return pre

    def refine(self, node: CFGNode, state: S) -> S:
        """State entering an ``if`` branch proxy (``node.branch`` is the
        test expression plus the polarity of this branch)."""
        return state


def solve(cfg: CFG, analysis: ForwardAnalysis[S]) -> Dict[int, S]:
    """Fixpoint IN-states, keyed by node index.

    IN-states are *recomputed* from the predecessors' current OUT-states
    on every visit rather than accumulated in place.  Accumulation is
    only equivalent for monotone transfers, and the resource analysis is
    deliberately not monotone: a release is a strong update that can
    shrink a site's status set once the alias sets have grown, and an
    accumulated join would keep the stale pessimistic contribution from
    an earlier visit alive forever (a phantom leak at EXIT).

    Termination: the chaotic iteration stabilizes once the alias/taint
    components (which only depend on assignments, hence grow toward a
    fixed shape) settle, after which every transfer is a deterministic
    function of a stabilized IN.  A generous visit budget backstops the
    theoretical possibility of oscillation; on exhaustion the current
    states are returned (the analyses degrade to noisier-but-bounded
    results rather than hanging).
    """
    nodes = cfg.nodes
    preds: Dict[int, List[tuple]] = {node.index: [] for node in nodes}
    for node in nodes:
        for target in node.succs:
            preds[target].append((node.index, False))
        for target in node.esuccs:
            preds[target].append((node.index, True))

    in_states: Dict[int, S] = {
        node.index: analysis.bottom() for node in nodes
    }
    in_states[cfg.entry.index] = analysis.initial(cfg)
    out_states: Dict[int, S] = {}
    exc_states: Dict[int, S] = {}

    # Seed with every node (entry processed first): analyses record
    # events (acquisitions, edges) during transfer, so each node must be
    # visited at least once even if its IN-state never rises above bottom.
    worklist: List[int] = [node.index for node in reversed(nodes)]
    on_list = {node.index for node in nodes}
    budget = 64 * max(1, len(nodes)) * max(1, len(nodes))
    while worklist and budget > 0:
        budget -= 1
        index = worklist.pop()
        on_list.discard(index)
        node = nodes[index]

        pre = analysis.initial(cfg) if node is cfg.entry \
            else analysis.bottom()
        for pred_index, is_exc in preds[index]:
            if pred_index in out_states:
                carried = exc_states[pred_index] if is_exc \
                    else out_states[pred_index]
                pre = analysis.join(pre, carried)
        in_states[index] = pre

        if node.is_proxy or node.stmt is None:
            post = analysis.refine(node, pre) \
                if node.branch is not None else pre
        else:
            post = analysis.transfer(node, pre)
        exc = analysis.exc_state(node, pre, post)

        first = index not in out_states
        changed = first or out_states[index] != post \
            or exc_states[index] != exc
        out_states[index] = post
        exc_states[index] = exc
        if changed:
            for succ in (node.succs, node.esuccs):
                for target in succ:
                    if target not in on_list:
                        worklist.append(target)
                        on_list.add(target)
    return in_states
