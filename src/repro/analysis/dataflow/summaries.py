"""Per-function escape/alias summaries and the analyses that build them.

A :class:`FunctionSummary` is the interprocedural interface of one
function: which parameters it releases or lets escape, whether its
return value is a still-open resource or snapshot-tainted data, which
latches it may acquire.  Summaries are computed by running the three
intraprocedural analyses below with the *callees'* summaries plugged
in, and iterating to a fixpoint over the whole program (see
:mod:`repro.analysis.dataflow.program`).  All summary domains are
finite sets that only ever grow, so the fixpoint terminates.

The same analyses, re-run once summaries have converged, also yield the
per-function *evidence* (leaks, lock-order edges, taint flows) the
RPL010–RPL012 rules report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow.callgraph import (
    EXTERNAL_TYPE, CallGraph, CallSite, FunctionInfo, RESOLVED, UNRESOLVED,
)
from repro.analysis.dataflow.cfg import CFG, CFGNode, exec_parts
from repro.analysis.dataflow.lattice import ForwardAnalysis, solve

# -- domain knowledge: the resource & lock vocabulary of this codebase ------

#: attribute-call names that acquire a resource, with a human kind
ACQUIRE_ATTRS = {
    "fetch": "pinned page",
    "create": "pinned page",
    "begin": "transaction",
    "begin_read": "read context",
}

#: receivers we trust to hand out resources even when the call site
#: cannot be resolved to a program function
_ACQUIRE_RECEIVER_HINTS = {
    "pool", "_pool", "buffer_pool", "pager", "_pager", "source", "_source",
    "src", "page_source", "engine", "_engine", "aux_engine",
}

#: attribute-call names that release: first data argument if present,
#: otherwise the receiver
RELEASE_ATTRS = {"release", "unpin", "close", "commit", "abort", "rollback"}

#: the root acquisition primitives: these functions *create* the pin /
#: transaction / read context, so calls to them always open a site even
#: though their own bodies don't look like acquisitions
PRIMITIVE_ACQUIRERS = {
    ("storage/buffer_pool.py", "fetch"),
    ("storage/buffer_pool.py", "create"),
    ("storage/engine.py", "begin"),
    ("storage/engine.py", "begin_read"),
}

#: external container methods that take ownership of their argument
CONTAINER_STORE_ATTRS = {"append", "add", "appendleft", "push", "put",
                         "put_nowait", "setdefault", "extend"}

#: attribute names that look like latches
LOCKISH_ATTRS = {"_latch", "latch", "_lock", "lock", "_mutex", "mutex"}

#: attribute-call names that block the calling thread (RPL021); ``is_set``
#: is the cancel-protocol poll — cheap, but holding a latch across it
#: couples the latch to the cancellation handshake
BLOCKING_ATTRS = {"join", "wait", "is_set"}

#: receiver names that mark a call as thread/event machinery (so that
#: ``", ".join(cols)`` and dict ``.wait`` lookalikes stay out of scope)
BLOCKING_RECEIVER_HINTS = {
    "thread", "threads", "t", "worker", "workers", "cancel", "event",
    "_event", "evt", "done", "stop", "cond", "_cond", "condition",
    "barrier", "ready",
}

#: threading constructors whose locals become blocking-capable receivers
_THREADING_CTORS = {"Thread", "Event", "Condition", "Barrier"}

#: container methods that mutate their receiver in place (RPL023)
MUTATING_ATTRS = CONTAINER_STORE_ATTRS | {
    "update", "pop", "popitem", "clear", "insert", "sort", "remove",
    "discard",
}

#: raw durable-write APIs on storage surfaces (RPL022)
DURABLE_WRITE_APIS = {"append", "write", "truncate", "seek"}

#: classes whose ``self._file`` is a checksummed durable surface
DURABLE_SELF_FILE_CLASSES = {"BlockLogWriter", "WriteAheadLog", "Maplog",
                             "Pagelog"}

#: classes whose ``self._meta_file`` is the dual-slot checksummed meta
DURABLE_META_CLASSES = {"Pager"}

#: bare variable names treated as durable surfaces at call sites
DURABLE_NAME_HINTS = {"log_file", "wal_file", "maplog_file", "meta_file"}

#: surfaces whose *appends* are raw page images by design: Pagelog slot
#: CRCs live in the Maplog entries that reference them, not in trailers
RAW_IMAGE_SURFACES = {("Pagelog", "_file")}

#: classes that may truncate their own surface (torn-tail repair)
TRUNCATE_EXEMPT_CLASSES = {"BlockLogWriter", "BlockLogReader"}

#: modules below the checksum boundary: the device model itself and the
#: fault injector that corrupts bytes on purpose
DURABILITY_EXEMPT_MODULES = ("storage/disk.py", "storage/chaosdisk.py")

#: functions that wrap payloads in checksummed trailers
SEALER_NAMES = {"seal_block"}

#: crc helpers: a function that computes a page crc and returns a value
#: is building a checksummed image (``Pager._encode_meta``)
CRC_HELPER_NAMES = {"page_crc"}

#: snapshot-taint sources: method names and constructed class names
TAINT_SOURCE_ATTRS = {"snapshot_source"}
TAINT_SOURCE_CLASSES = {"SnapshotPageSource"}

#: current-database mutation sinks (attribute-call names)
TAINT_SINK_ATTRS = {"install", "put_raw", "make_writable", "mark_dirty",
                    "log_commit"}

#: resource statuses
OPEN = "open"
CLOSED = "closed"
ESCAPED = "escaped"
PARAM = "param"


@dataclass
class FunctionSummary:
    """The caller-visible dataflow facts of one function."""

    qualname: str
    returns_resource: bool = False
    resource_kind: str = "resource"
    releases_params: FrozenSet[int] = frozenset()
    escape_params: FrozenSet[int] = frozenset()
    returns_taint: bool = False
    sink_params: FrozenSet[int] = frozenset()
    acquires_locks: FrozenSet[str] = frozenset()
    #: (class qualname, attr, line, latches held) per attribute write
    attr_writes: FrozenSet[Tuple[str, str, int, Tuple[str, ...]]] = frozenset()
    #: (display, line, latches held) per blocking join/wait/is_set call
    blocking_calls: FrozenSet[Tuple[str, int, Tuple[str, ...]]] = frozenset()
    #: (callee qualname, latches held) per resolved call site
    call_locks: FrozenSet[Tuple[str, Tuple[str, ...]]] = frozenset()
    #: program classes constructed in this function
    constructs: FrozenSet[str] = frozenset()
    #: params appended/written raw to a durable surface by this function
    durable_sink_params: FrozenSet[int] = frozenset()
    #: the return value carries a checksummed trailer / crc field
    returns_sealed: bool = False
    #: params (by index) this function mutates in place
    mutates_params: FrozenSet[int] = frozenset()
    #: root-cause descriptions of non-parameter state this function
    #: mutates (propagated verbatim through callers: the set is finite,
    #: so the fixpoint still terminates)
    impure_effects: FrozenSet[str] = frozenset()
    #: protocol events applied to parameters: (param idx, protocol,
    #: event name) — the typestate entry transformer callers replay
    protocol_ops: FrozenSet[Tuple[int, str, str]] = frozenset()
    #: (protocol, state) of the returned value — the exit transformer
    protocol_returns: Optional[Tuple[str, str]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "returns_resource": self.returns_resource,
            "resource_kind": self.resource_kind,
            "releases_params": sorted(self.releases_params),
            "escape_params": sorted(self.escape_params),
            "returns_taint": self.returns_taint,
            "sink_params": sorted(self.sink_params),
            "acquires_locks": sorted(self.acquires_locks),
            "attr_writes": [[c, a, l, list(h)]
                            for c, a, l, h in sorted(self.attr_writes)],
            "blocking_calls": [[d, l, list(h)]
                               for d, l, h in sorted(self.blocking_calls)],
            "call_locks": [[q, list(h)]
                           for q, h in sorted(self.call_locks)],
            "constructs": sorted(self.constructs),
            "durable_sink_params": sorted(self.durable_sink_params),
            "returns_sealed": self.returns_sealed,
            "mutates_params": sorted(self.mutates_params),
            "impure_effects": sorted(self.impure_effects),
            "protocol_ops": [[i, p, e]
                             for i, p, e in sorted(self.protocol_ops)],
            "protocol_returns": list(self.protocol_returns)
            if self.protocol_returns is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            returns_resource=bool(data["returns_resource"]),
            resource_kind=str(data["resource_kind"]),
            releases_params=frozenset(data["releases_params"]),  # type: ignore[arg-type]
            escape_params=frozenset(data["escape_params"]),  # type: ignore[arg-type]
            returns_taint=bool(data["returns_taint"]),
            sink_params=frozenset(data["sink_params"]),  # type: ignore[arg-type]
            acquires_locks=frozenset(data["acquires_locks"]),  # type: ignore[arg-type]
            attr_writes=frozenset(
                (str(c), str(a), int(l), tuple(h))
                for c, a, l, h in data["attr_writes"]),  # type: ignore[union-attr]
            blocking_calls=frozenset(
                (str(d), int(l), tuple(h))
                for d, l, h in data["blocking_calls"]),  # type: ignore[union-attr]
            call_locks=frozenset(
                (str(q), tuple(h))
                for q, h in data["call_locks"]),  # type: ignore[union-attr]
            constructs=frozenset(data["constructs"]),  # type: ignore[arg-type]
            durable_sink_params=frozenset(data["durable_sink_params"]),  # type: ignore[arg-type]
            returns_sealed=bool(data["returns_sealed"]),
            mutates_params=frozenset(data["mutates_params"]),  # type: ignore[arg-type]
            impure_effects=frozenset(data["impure_effects"]),  # type: ignore[arg-type]
            protocol_ops=frozenset(
                (int(i), str(p), str(e))
                for i, p, e in data["protocol_ops"]),  # type: ignore[union-attr]
            protocol_returns=(
                (str(data["protocol_returns"][0]),  # type: ignore[index]
                 str(data["protocol_returns"][1]))  # type: ignore[index]
                if data["protocol_returns"] is not None else None),
        )


# -- evidence records -------------------------------------------------------

@dataclass(frozen=True)
class Leak:
    line: int
    kind: str
    what: str           #: e.g. "pool.fetch(...)"
    exceptional: bool   #: leaked on an exception path (vs. normal return)


@dataclass(frozen=True)
class LockEdge:
    held: str
    acquired: str
    func: str
    line: int


@dataclass(frozen=True)
class TaintHit:
    line: int
    source: str         #: where the snapshot-scoped value came from
    sink: str           #: the mutation entry point it reached


@dataclass(frozen=True)
class RawDurableWrite:
    line: int
    surface: str        #: e.g. "WriteAheadLog._file"
    api: str            #: append / write / truncate / seek
    detail: str         #: human-readable call display


@dataclass(frozen=True)
class ProtocolViolation:
    line: int
    protocol: str       #: spec name ("txn", "retro", ...)
    rule: str           #: reporting rule ("RPL030" / "RPL032")
    event: str          #: the event fired in a violation state
    state: str          #: the (definite) state the subject was in
    what: str           #: human display of the subject / origin
    kind: str           #: spec kind noun ("transaction", ...)


@dataclass(frozen=True)
class ProtocolLeak:
    line: int
    protocol: str
    kind: str
    what: str
    exceptional: bool   #: left incomplete on an exception path


@dataclass(frozen=True)
class StaleWrite:
    line: int
    name: str           #: the local holding the stale latched read
    latch: str          #: the latch released between read and write
    cls: str            #: owning class of the attribute
    attr: str
    read_line: int


@dataclass(frozen=True)
class ThreadEscape:
    line: int
    protocol: str
    kind: str
    what: str


@dataclass
class FunctionResult:
    """Summary + evidence for one function at the current fixpoint."""

    summary: FunctionSummary
    leaks: List[Leak] = field(default_factory=list)
    lock_edges: List[LockEdge] = field(default_factory=list)
    taint_hits: List[TaintHit] = field(default_factory=list)
    raw_durable_writes: List[RawDurableWrite] = field(default_factory=list)
    protocol_violations: List[ProtocolViolation] = field(default_factory=list)
    protocol_leaks: List[ProtocolLeak] = field(default_factory=list)
    stale_writes: List[StaleWrite] = field(default_factory=list)
    thread_escapes: List[ThreadEscape] = field(default_factory=list)


# -- shared helpers ---------------------------------------------------------

def _call_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return "<computed>"


def _receiver_hint(call: ast.Call) -> Optional[str]:
    """Trailing receiver name of an attribute call (``self.pool`` -> pool)."""
    if not isinstance(call.func, ast.Attribute):
        return None
    value = call.func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _display(call: ast.Call) -> str:
    recv = _receiver_hint(call)
    name = _call_name(call)
    return f"{recv}.{name}(...)" if recv else f"{name}(...)"


def _arg_offset(site: CallSite, target: FunctionInfo) -> int:
    """Positional-arg -> parameter index offset (bound methods skip self)."""
    if target.cls is not None and isinstance(site.call.func, ast.Attribute):
        return 1
    return 0


def _base_name(expr: ast.expr) -> Optional[str]:
    """The root Name of a Name / single-level Attribute expression."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        return expr.value.id
    return None


def _is_stub(node: ast.AST) -> bool:
    """Protocol-style body: docstring / pass / ... / raise only."""
    body = list(getattr(node, "body", []))
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]
    if not body:
        return True
    return all(
        isinstance(stmt, (ast.Pass, ast.Raise))
        or (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)
        for stmt in body
    )


def _known_none(test: ast.expr, polarity: bool) -> Optional[str]:
    """The name proven None/falsy on the ``polarity`` branch of ``test``.

    Recognizes ``x is None`` / ``x is not None`` / ``x`` / ``not x``.
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _known_none(test.operand, not polarity)
    if isinstance(test, ast.Name):
        return test.id if not polarity else None
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.left, ast.Name) \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        if isinstance(test.ops[0], ast.Is):
            return test.left.id if polarity else None
        if isinstance(test.ops[0], ast.IsNot):
            return test.left.id if not polarity else None
    return None


def _stmt_calls(node: CFGNode) -> List[ast.Call]:
    # Post-order = Python evaluation order: arguments run before the
    # enclosing call, so ``out.append(pool.fetch(pid))`` registers the
    # fetch site before append decides the pin escaped into ``out``.
    calls: List[ast.Call] = []
    if node.stmt is None:
        return calls

    def visit(sub: ast.AST) -> None:
        for child in ast.iter_child_nodes(sub):
            visit(child)
        if isinstance(sub, ast.Call):
            calls.append(sub)

    for part in exec_parts(node.stmt):
        visit(part)
    return calls


class _Oracle:
    """Answers "what does this call do?" from the call graph + summaries."""

    def __init__(self, graph: CallGraph,
                 summaries: Dict[str, FunctionSummary]) -> None:
        self.graph = graph
        self.summaries = summaries

    def site(self, call: ast.Call) -> Optional[CallSite]:
        return self.graph.site_for(call)

    def target_summaries(
            self, call: ast.Call) -> List[Tuple[CallSite, FunctionSummary]]:
        site = self.site(call)
        if site is None:
            return []
        out = []
        for target in site.targets:
            summary = self.summaries.get(target.qualname)
            if summary is not None:
                out.append((site, summary))
        return out

    def is_unresolved(self, call: ast.Call) -> bool:
        site = self.site(call)
        return site is not None and site.status == UNRESOLVED

    def acquire_kind(self, call: ast.Call) -> Optional[str]:
        """Does this call hand back a resource the caller must release?"""
        name = _call_name(call)
        if name in ACQUIRE_ATTRS and isinstance(call.func, ast.Attribute):
            for kw in call.keywords:
                if kw.arg == "pin" and isinstance(kw.value, ast.Constant) \
                        and kw.value.value is False:
                    return None
            site = self.site(call)
            if site is not None and site.status == RESOLVED:
                # Trust the resolution: acquire only through the root
                # primitives, opaque protocol stubs, or callees whose
                # summary says they return a live resource.  A resolved
                # concrete function named e.g. "create" that builds a
                # value (BTree.create) is not an acquisition.
                for target in site.targets:
                    if (target.module, target.name) in PRIMITIVE_ACQUIRERS:
                        return ACQUIRE_ATTRS[name]
                    if _is_stub(target.node):
                        return ACQUIRE_ATTRS[name]
                    summary = self.summaries.get(target.qualname)
                    if summary is not None and summary.returns_resource:
                        return summary.resource_kind
                return None
            hint = _receiver_hint(call)
            if hint in _ACQUIRE_RECEIVER_HINTS:
                return ACQUIRE_ATTRS[name]
            return None
        for _site, summary in self.target_summaries(call):
            if summary.returns_resource:
                return summary.resource_kind
        return None


# -- resource lifecycle (RPL010 core) ---------------------------------------

class _ResState:
    """sites: site-id -> statuses; vars: name -> site-ids (may-alias)."""

    __slots__ = ("sites", "vars")

    def __init__(self, sites: Dict[str, FrozenSet[str]],
                 vars: Dict[str, FrozenSet[str]]) -> None:
        self.sites = sites
        self.vars = vars

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ResState) \
            and self.sites == other.sites and self.vars == other.vars

    def copy(self) -> "_ResState":
        return _ResState(dict(self.sites), dict(self.vars))


class ResourceAnalysis(ForwardAnalysis[_ResState]):
    """Tracks acquisition sites through aliases, releases and escapes."""

    def __init__(self, func: FunctionInfo, oracle: _Oracle) -> None:
        self.func = func
        self.oracle = oracle
        #: site-id -> (line, kind, display)
        self.site_info: Dict[str, Tuple[int, str, str]] = {}
        self.released_params: Set[int] = set()
        self.escaped_params: Set[int] = set()
        self.returns_resource = False
        self.resource_kind = "resource"

    # - framework hooks -

    def initial(self, cfg: CFG) -> _ResState:
        sites: Dict[str, FrozenSet[str]] = {}
        vars: Dict[str, FrozenSet[str]] = {}
        for index, name in enumerate(self.func.params):
            site = f"<param:{index}>"
            sites[site] = frozenset({PARAM})
            vars[name] = frozenset({site})
        return _ResState(sites, vars)

    def bottom(self) -> _ResState:
        return _ResState({}, {})

    def join(self, a: _ResState, b: _ResState) -> _ResState:
        sites = dict(a.sites)
        for site, statuses in b.sites.items():
            sites[site] = sites.get(site, frozenset()) | statuses
        vars = dict(a.vars)
        for name, ids in b.vars.items():
            vars[name] = vars.get(name, frozenset()) | ids
        return _ResState(sites, vars)

    def exc_state(self, node: CFGNode, pre: _ResState,
                  post: _ResState) -> _ResState:
        # A release statement that raises is assumed to have released:
        # propagating PRE would flag every correct try/finally cleanup.
        # Helpers whose summary releases a parameter count the same way.
        for call in _stmt_calls(node):
            if _call_name(call) in RELEASE_ATTRS:
                return post
            for _, summary in self.oracle.target_summaries(call):
                if summary.releases_params:
                    return post
        return pre

    def refine(self, node: CFGNode, state: _ResState) -> _ResState:
        # On the branch where the guard proves ``x`` is None/falsy, the
        # acquisition bound to ``x`` cannot have happened on any path
        # reaching here: drop OPEN so `if x is not None: release(x)`
        # cleanup idioms verify.
        assert node.branch is not None
        test, polarity = node.branch
        name = _known_none(test, polarity)
        if name is None:
            return state
        new = state.copy()
        for site in new.vars.get(name, frozenset()):
            old = new.sites.get(site)
            if old and OPEN in old and PARAM not in old:
                new.sites[site] = old - {OPEN}
        return new

    # - state helpers -

    def _sites_of(self, state: _ResState,
                  expr: Optional[ast.expr]) -> FrozenSet[str]:
        if isinstance(expr, ast.Call):
            # An acquisition used directly as an argument: its site was
            # registered when the inner call ran (evaluation order).
            site = f"{expr.lineno}:{expr.col_offset}"
            if site in state.sites:
                return frozenset({site})
        if expr is None:
            return frozenset()
        name = _base_name(expr)
        if name is None:
            return frozenset()
        return state.vars.get(name, frozenset())

    def _set_status(self, state: _ResState, ids: FrozenSet[str],
                    status: str) -> None:
        for site in ids:
            old = state.sites.get(site, frozenset())
            if PARAM in old:
                index = int(site[len("<param:"):-1])
                if status == CLOSED:
                    self.released_params.add(index)
                elif status == ESCAPED:
                    self.escaped_params.add(index)
                continue
            if status == CLOSED:
                # Strong update: a release through a name closes every
                # site the name may alias.  On any concrete path the
                # name holds exactly one of them, and the others were
                # already closed before the rebinding that created the
                # alias set (the loop-descent fetch/release pattern).
                # Conditional leaks still surface because the branch
                # states join *after* this transfer.
                state.sites[site] = frozenset({CLOSED})
            else:
                state.sites[site] = old | {status}

    def _new_site(self, state: _ResState, call: ast.Call,
                  kind: str) -> str:
        site = f"{call.lineno}:{call.col_offset}"
        self.site_info[site] = (call.lineno, kind, _display(call))
        state.sites[site] = frozenset({OPEN})
        return site

    # - transfer -

    def transfer(self, node: CFGNode, state: _ResState) -> _ResState:
        stmt = node.stmt
        new = state.copy()
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return new  # with-managed acquisitions release via __exit__
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # A nested def/class capturing a tracked value (the cleanup-
            # closure pattern) takes over the release obligation.
            self._escape_captured(new, stmt)
            return new

        bound_call: Optional[ast.Call] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Call):
            bound_call = stmt.value

        for call in _stmt_calls(node):
            self._apply_call(new, call,
                             bound=(call is bound_call),
                             in_return=isinstance(stmt, ast.Return))

        if isinstance(stmt, ast.Assign):
            self._apply_assign(new, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._apply_target(new, stmt.target, stmt.value)
        elif isinstance(stmt, ast.Return):
            self._apply_return(new, stmt.value)
        elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom)):
            value = stmt.value.value
            ids = self._sites_of(new, value)
            if ids:
                self._set_status(new, ids, ESCAPED)
        return new

    def _escape_captured(self, state: _ResState, stmt: ast.stmt) -> None:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and sub.id in state.vars:
                ids = state.vars[sub.id]
                if ids:
                    self._set_status(state, ids, ESCAPED)

    def _apply_call(self, state: _ResState, call: ast.Call,
                    bound: bool, in_return: bool) -> None:
        name = _call_name(call)
        oracle = self.oracle
        handled_args: Set[int] = set()

        # 1. releases by well-known name: first data arg, else receiver
        if name in RELEASE_ATTRS and isinstance(call.func, ast.Attribute):
            arg_ids = self._sites_of(state, call.args[0]) \
                if call.args else frozenset()
            if arg_ids:
                self._set_status(state, arg_ids, CLOSED)
                handled_args.add(0)
            elif not call.args:
                recv_ids = self._sites_of(state, call.func.value)
                if recv_ids:
                    self._set_status(state, recv_ids, CLOSED)

        # 2. effects derived from callee summaries
        for site, summary in oracle.target_summaries(call):
            for target in site.targets:
                offset = _arg_offset(site, target)
                for position, arg in enumerate(call.args):
                    if position in handled_args:
                        continue
                    ids = self._sites_of(state, arg)
                    if not ids:
                        continue
                    param = position + offset
                    if param in summary.releases_params:
                        self._set_status(state, ids, CLOSED)
                        handled_args.add(position)
                    elif param in summary.escape_params:
                        self._set_status(state, ids, ESCAPED)
                        handled_args.add(position)
                break  # summaries are joined per target below anyway

        # 3. a tracked value passed into an unresolved call escapes; so
        #    does one stored into an external container (stack.append)
        site = oracle.site(call)
        conservative_escape = oracle.is_unresolved(call) or (
            name in CONTAINER_STORE_ATTRS
            and isinstance(call.func, ast.Attribute)
            and (site is None or not site.targets))
        if conservative_escape:
            for position, arg in enumerate(call.args):
                if position in handled_args:
                    continue
                ids = self._sites_of(state, arg)
                if ids:
                    self._set_status(state, ids, ESCAPED)

        # 4. acquisitions
        kind = oracle.acquire_kind(call)
        if kind is not None:
            site_id = self._new_site(state, call, kind)
            if in_return:
                state.sites[site_id] = frozenset({OPEN, ESCAPED})
                self.returns_resource = True
                self.resource_kind = kind
            elif not bound:
                # result discarded or buried in a larger expression:
                # stays OPEN with no binding -> reported if never closed
                pass

    def _apply_assign(self, state: _ResState, stmt: ast.Assign) -> None:
        for target in stmt.targets:
            self._apply_target(state, target, stmt.value)

    def _apply_target(self, state: _ResState, target: ast.expr,
                      value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if isinstance(value, ast.Call):
                kind = self.oracle.acquire_kind(value)
                if kind is not None:
                    site = f"{value.lineno}:{value.col_offset}"
                    state.vars[target.id] = frozenset({site})
                    return
            if isinstance(value, ast.Name):
                state.vars[target.id] = state.vars.get(
                    value.id, frozenset())
                return
            state.vars[target.id] = frozenset()
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # stored on the heap: the value escapes local reasoning
            ids = self._sites_of(state, value)
            if ids:
                self._set_status(state, ids, ESCAPED)
            if isinstance(value, ast.Call):
                kind = self.oracle.acquire_kind(value)
                if kind is not None:
                    site = f"{value.lineno}:{value.col_offset}"
                    if site in state.sites:
                        state.sites[site] = \
                            state.sites[site] | {ESCAPED}
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    state.vars[element.id] = frozenset()

    def _apply_return(self, state: _ResState,
                      value: Optional[ast.expr]) -> None:
        elements: Sequence[ast.expr]
        if value is None:
            return
        elements = value.elts if isinstance(
            value, (ast.Tuple, ast.List)) else [value]
        for element in elements:
            ids = self._sites_of(state, element)
            open_returned = any(
                OPEN in state.sites.get(site, frozenset())
                for site in ids)
            if open_returned:
                self.returns_resource = True
                kinds = {self.site_info[s][1] for s in ids
                         if s in self.site_info}
                if kinds:
                    self.resource_kind = sorted(kinds)[0]
            if ids:
                self._set_status(state, ids, ESCAPED)

    # - reporting -

    def leaks(self, cfg: CFG,
              in_states: Dict[int, _ResState]) -> List[Leak]:
        found: Dict[str, Leak] = {}
        for exit_node, exceptional in ((cfg.exit, False),
                                       (cfg.exc_exit, True)):
            state = in_states.get(exit_node.index)
            if state is None:
                continue
            for site, statuses in state.sites.items():
                if OPEN in statuses and ESCAPED not in statuses \
                        and site in self.site_info:
                    line, kind, what = self.site_info[site]
                    previous = found.get(site)
                    if previous is None or (previous.exceptional
                                            and not exceptional):
                        found[site] = Leak(line, kind, what, exceptional)
        return sorted(found.values(), key=lambda leak: leak.line)


# -- lock order (RPL011 core) -----------------------------------------------

class _LockIndex:
    """Which attributes of which classes are latches."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.assigned: Set[Tuple[str, str]] = set()  # (class qual, attr)
        for func in graph.functions.values():
            if func.cls is None:
                continue
            for node in ast.walk(func.node):
                if isinstance(node, ast.Assign) and self._is_lock_ctor(
                        node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Attribute) \
                                and isinstance(target.value, ast.Name) \
                                and target.value.id == "self":
                            self.assigned.add(
                                (func.cls.qualname, target.attr))

    @staticmethod
    def _is_lock_ctor(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        callee = expr.func
        name = callee.attr if isinstance(callee, ast.Attribute) \
            else callee.id if isinstance(callee, ast.Name) else ""
        return name in {"Lock", "RLock", "Condition", "Semaphore"}

    def lock_id(self, func: FunctionInfo,
                local_types: Dict[str, Set[str]],
                expr: ast.expr) -> Optional[str]:
        """Stable identity of a latch expression, or None."""
        if not isinstance(expr, ast.Attribute):
            return None
        receiver_types = self.graph._receiver_types(
            func, local_types, expr.value)
        for rtype in sorted(receiver_types):
            if rtype == EXTERNAL_TYPE:
                continue
            lockish = expr.attr in LOCKISH_ATTRS \
                or (rtype, expr.attr) in self.assigned
            if lockish:
                cls = self.graph.classes.get(rtype)
                owner = cls.name if cls is not None else rtype
                return f"{owner}.{expr.attr}"
        return None


class LockAnalysis(ForwardAnalysis[FrozenSet[str]]):
    """Held-latch sets; emits ordering edges at every acquisition."""

    def __init__(self, func: FunctionInfo, oracle: _Oracle,
                 locks: _LockIndex) -> None:
        self.func = func
        self.oracle = oracle
        self.locks = locks
        self.local_types = oracle.graph._local_types(func)
        self.acquired: Set[str] = set()
        self.edges: Set[LockEdge] = set()
        #: (class qualname, attr, line, held) per attribute write
        self.attr_writes: Set[Tuple[str, str, int, Tuple[str, ...]]] = set()
        #: (display, line, held) per blocking call
        self.blocking: Set[Tuple[str, int, Tuple[str, ...]]] = set()
        #: (callee qualname, held) per resolved call site
        self.call_locks: Set[Tuple[str, Tuple[str, ...]]] = set()
        #: program classes constructed here
        self.constructs: Set[str] = set()
        self._thread_locals = self._scan_thread_locals()

    def _scan_thread_locals(self) -> Set[str]:
        """Local names bound to ``threading.Thread/Event/...`` objects."""
        names: Set[str] = set()
        for node in ast.walk(self.func.node):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Call):
                ctor = _call_name(node.value)
                if ctor in _THREADING_CTORS:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def initial(self, cfg: CFG) -> FrozenSet[str]:
        return frozenset()

    def bottom(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def _lexical(self, node: CFGNode) -> FrozenSet[str]:
        held: Set[str] = set()
        for stmt in node.with_stack:
            for item in stmt.items:
                lock = self.locks.lock_id(self.func, self.local_types,
                                          item.context_expr)
                if lock is not None:
                    held.add(lock)
        return frozenset(held)

    def _record(self, held: FrozenSet[str], acquired: str,
                line: int) -> None:
        self.acquired.add(acquired)
        for lock in held:
            if lock != acquired:
                self.edges.add(LockEdge(lock, acquired,
                                        self.func.qualname, line))

    def transfer(self, node: CFGNode,
                 state: FrozenSet[str]) -> FrozenSet[str]:
        held = state | self._lexical(node)
        stmt = node.stmt

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                lock = self.locks.lock_id(self.func, self.local_types,
                                          item.context_expr)
                if lock is not None:
                    self._record(held, lock, stmt.lineno)
                    held = held | {lock}
            return state  # body nodes see it via with_stack

        for call in _stmt_calls(node):
            name = _call_name(call)
            if isinstance(call.func, ast.Attribute) \
                    and name in {"acquire", "release"}:
                lock = self.locks.lock_id(self.func, self.local_types,
                                          call.func.value)
                if lock is not None:
                    if name == "acquire":
                        self._record(held, lock, call.lineno)
                        state = state | {lock}
                        held = held | {lock}
                    else:
                        state = state - {lock}
                        held = held - {lock}
                    continue
            self._record_call_facts(call, held)
            for _site, summary in self.oracle.target_summaries(call):
                for inner in sorted(summary.acquires_locks):
                    self._record(held, inner, call.lineno)

        self._record_attr_writes(node, held)
        return state

    # -- effect recording (feeds RPL020/RPL021 via the summaries) ----------

    def _record_call_facts(self, call: ast.Call,
                           held: FrozenSet[str]) -> None:
        held_t = tuple(sorted(held))
        name = _call_name(call)
        if name in BLOCKING_ATTRS and isinstance(call.func, ast.Attribute):
            hint = _receiver_hint(call)
            if (hint is not None and hint.lstrip("_") in
                    BLOCKING_RECEIVER_HINTS) \
                    or hint in BLOCKING_RECEIVER_HINTS \
                    or hint in self._thread_locals:
                self.blocking.add((_display(call), call.lineno, held_t))
        site = self.oracle.site(call)
        if site is not None and site.status == RESOLVED:
            for target in site.targets:
                self.call_locks.add((target.qualname, held_t))
        for cls_qual in self.oracle.graph._expr_class(self.func, call):
            if cls_qual != EXTERNAL_TYPE:
                self.constructs.add(cls_qual)

    def _record_attr_writes(self, node: CFGNode,
                            held: FrozenSet[str]) -> None:
        stmt = node.stmt
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        held_t = tuple(sorted(held))
        stack = targets
        while stack:
            target = stack.pop()
            if isinstance(target, (ast.Tuple, ast.List)):
                stack.extend(target.elts)
                continue
            # x.attr = v  and  x.attr[k] = v  are both writes to x.attr
            if isinstance(target, ast.Subscript):
                target = target.value
            if not isinstance(target, ast.Attribute):
                continue
            if target.attr in LOCKISH_ATTRS:
                continue
            for rtype in self.oracle.graph._receiver_types(
                    self.func, self.local_types, target.value):
                if rtype == EXTERNAL_TYPE:
                    continue
                self.attr_writes.add(
                    (rtype, target.attr, stmt.lineno, held_t))


# -- snapshot-epoch taint (RPL012 core) -------------------------------------

class _TaintState:
    __slots__ = ("tainted",)

    def __init__(self, tainted: FrozenSet[str]) -> None:
        self.tainted = tainted

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _TaintState) \
            and self.tainted == other.tainted


class TaintAnalysis(ForwardAnalysis[_TaintState]):
    """Snapshot-scoped values must never reach a mutation sink.

    Propagation is deliberately narrow — name copies, attribute reads,
    ``bytes``/``bytearray`` conversion, ``.fetch()`` on a tainted
    page source, and callees summarized as ``returns_taint`` — so the
    legitimate snapshot-read -> result-table flow of retrospective
    queries stays clean while raw snapshot bytes reaching ``install``/
    ``put_raw``/``log_commit`` are flagged.
    """

    def __init__(self, func: FunctionInfo, oracle: _Oracle,
                 tainted_params: FrozenSet[int] = frozenset()) -> None:
        self.func = func
        self.oracle = oracle
        self.tainted_params = tainted_params
        self.hits: Set[TaintHit] = set()
        self.returns_taint = False
        self.sink_params: Set[int] = set()
        self.source_desc: Dict[str, str] = {}

    def initial(self, cfg: CFG) -> _TaintState:
        names = []
        for index, name in enumerate(self.func.params):
            if index in self.tainted_params:
                names.append(name)
                self.source_desc.setdefault(
                    name, f"parameter '{name}'")
        return _TaintState(frozenset(names))

    def bottom(self) -> _TaintState:
        return _TaintState(frozenset())

    def join(self, a: _TaintState, b: _TaintState) -> _TaintState:
        return _TaintState(a.tainted | b.tainted)

    # - expression taint -

    def _expr_tainted(self, state: _TaintState,
                      expr: ast.expr) -> Optional[str]:
        """A human description of the taint source, or None if clean."""
        if isinstance(expr, ast.Name):
            if expr.id in state.tainted:
                return self.source_desc.get(expr.id, f"'{expr.id}'")
            return None
        if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self._expr_tainted(state, expr.value)
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name in {"bytes", "bytearray", "memoryview"}:
                for arg in expr.args:
                    desc = self._expr_tainted(state, arg)
                    if desc is not None:
                        return desc
                return None
            if name in TAINT_SOURCE_ATTRS or name in TAINT_SOURCE_CLASSES:
                return f"{_display(expr)} (line {expr.lineno})"
            if name == "fetch" and isinstance(expr.func, ast.Attribute):
                return self._expr_tainted(state, expr.func.value)
            for _site, summary in self.oracle.target_summaries(expr):
                if summary.returns_taint:
                    return f"{_display(expr)} (line {expr.lineno})"
            return None
        return None

    # - transfer -

    def transfer(self, node: CFGNode, state: _TaintState) -> _TaintState:
        tainted = set(state.tainted)
        stmt = node.stmt

        for call in _stmt_calls(node):
            self._check_sinks(state, call)

        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            desc = self._expr_tainted(state, stmt.value)
            if desc is not None:
                tainted.add(name)
                self.source_desc.setdefault(name, desc)
            else:
                tainted.discard(name)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    desc = self._expr_tainted(state, item.context_expr)
                    if desc is not None:
                        tainted.add(item.optional_vars.id)
                        self.source_desc.setdefault(
                            item.optional_vars.id, desc)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            if self._expr_tainted(state, stmt.value) is not None:
                self.returns_taint = True

        return _TaintState(frozenset(tainted))

    def _check_sinks(self, state: _TaintState, call: ast.Call) -> None:
        name = _call_name(call)
        if name in TAINT_SINK_ATTRS and isinstance(call.func, ast.Attribute):
            for arg in list(call.args) + [k.value for k in call.keywords]:
                desc = self._expr_tainted(state, arg)
                if desc is not None:
                    self._hit(call, desc, f"{_display(call)}")
                    break
            # make_writable/mark_dirty taint via the receiver too:
            # mutating a snapshot-scoped page source is itself the bug.
            if name in {"make_writable", "mark_dirty"}:
                desc = self._expr_tainted(state, call.func.value)
                if desc is not None:
                    self._hit(call, desc, f"{_display(call)}")
        for site_summary in self.oracle.target_summaries(call):
            site, summary = site_summary
            if not summary.sink_params:
                continue
            for target in site.targets:
                offset = _arg_offset(site, target)
                for position, arg in enumerate(call.args):
                    if position + offset in summary.sink_params:
                        desc = self._expr_tainted(state, arg)
                        if desc is not None:
                            self._hit(call, desc, _display(call))
                break

    def _hit(self, call: ast.Call, source: str, sink: str) -> None:
        self.hits.add(TaintHit(call.lineno, source, sink))


# -- durability effects (RPL022 core) ---------------------------------------

class DurabilityScan:
    """Classifies raw writes against the checksummed-surface contract.

    A *durable surface* is a file underlying one of the checksummed
    storage formats: ``self._file`` inside the block-log / WAL / Maplog
    / Pagelog classes, ``self._meta_file`` inside the Pager, or a bare
    name that spells out a log/meta file.  Writing to one is only legal
    when the payload is *sealed* — produced by ``checksums.seal_block``
    (directly, through a local, or through a callee whose summary says
    it returns a sealed image).  Class matching is syntactic (the
    enclosing class's name) so single-module fixtures and mutants are
    analyzable without resolving imports.
    """

    def __init__(self, func: FunctionInfo, oracle: _Oracle) -> None:
        self.func = func
        self.oracle = oracle
        self.raw_writes: List[RawDurableWrite] = []
        self.sink_params: Set[int] = set()
        self.returns_sealed = False
        self._params = {name: i for i, name in enumerate(func.params)}
        self._sealed_locals: Set[str] = set()

    def run(self) -> None:
        ctx = self.oracle.graph.contexts[self.func.module]
        nodes = [n for n in ast.walk(self.func.node)
                 if ctx.enclosing_function(n) is self.func.node
                 or n is self.func.node]
        self._collect_sealed_locals(nodes)
        calls_crc = False
        for node in nodes:
            if isinstance(node, ast.Call):
                if _call_name(node) in SEALER_NAMES | CRC_HELPER_NAMES:
                    calls_crc = True
                self._check_call(node)
            elif isinstance(node, ast.Return) and node.value is not None:
                if self._sealed(node.value):
                    self.returns_sealed = True
        if calls_crc and any(
                isinstance(n, ast.Return) and n.value is not None
                for n in nodes):
            # Builds a crc into an image it returns (Pager._encode_meta).
            self.returns_sealed = True

    def _collect_sealed_locals(self, nodes: Sequence[ast.AST]) -> None:
        # Two passes: sealed-ness flows through simple name copies.
        for _ in range(2):
            for node in nodes:
                if isinstance(node, ast.Assign) and self._sealed(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self._sealed_locals.add(target.id)

    def _sealed(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self._sealed_locals
        if isinstance(expr, ast.Call):
            if _call_name(expr) in SEALER_NAMES:
                return True
            for _site, summary in self.oracle.target_summaries(expr):
                if summary.returns_sealed:
                    return True
        return False

    def _surface(self, call: ast.Call) -> Optional[str]:
        assert isinstance(call.func, ast.Attribute)
        recv = call.func.value
        cls_name = self.func.cls.name if self.func.cls is not None else ""
        if isinstance(recv, ast.Attribute) \
                and isinstance(recv.value, ast.Name) \
                and recv.value.id == "self":
            if recv.attr == "_file" and cls_name in DURABLE_SELF_FILE_CLASSES:
                return f"{cls_name}._file"
            if recv.attr == "_meta_file" and cls_name in DURABLE_META_CLASSES:
                return f"{cls_name}._meta_file"
        if isinstance(recv, ast.Name) and recv.id in DURABLE_NAME_HINTS:
            return recv.id
        return None

    def _check_call(self, call: ast.Call) -> None:
        if self.func.module.endswith(DURABILITY_EXEMPT_MODULES):
            return
        if not isinstance(call.func, ast.Attribute):
            return
        api = call.func.attr
        if api in DURABLE_WRITE_APIS:
            surface = self._surface(call)
            if surface is not None:
                self._check_surface_write(call, api, surface)
        # Caller side of the cross-function contract: passing an
        # unsealed value into a callee that appends it raw.
        for site, summary in self.oracle.target_summaries(call):
            if not summary.durable_sink_params:
                continue
            for target in site.targets:
                offset = _arg_offset(site, target)
                for position, arg in enumerate(call.args):
                    if position + offset not in summary.durable_sink_params:
                        continue
                    if self._sealed(arg):
                        continue
                    if isinstance(arg, ast.Name) and arg.id in self._params:
                        self.sink_params.add(self._params[arg.id])
                        continue
                    self.raw_writes.append(RawDurableWrite(
                        call.lineno, f"via {target.qualname}", "append",
                        _display(call)))
                break

    def _check_surface_write(self, call: ast.Call, api: str,
                             surface: str) -> None:
        cls_name = self.func.cls.name if self.func.cls is not None else ""
        if api == "truncate":
            if cls_name in TRUNCATE_EXEMPT_CLASSES:
                return
            if not call.args:
                return
            arg = call.args[0]
            if isinstance(arg, ast.Constant) and arg.value == 0:
                return  # truncate-to-empty: the torn-bootstrap reset
            self.raw_writes.append(RawDurableWrite(
                call.lineno, surface, api, _display(call)))
            return
        if api == "seek":
            self.raw_writes.append(RawDurableWrite(
                call.lineno, surface, api, _display(call)))
            return
        # append(raw) / write(slot, raw): the payload is the last arg
        if (cls_name, "_file") in RAW_IMAGE_SURFACES \
                and surface.endswith("._file") and api == "append":
            return
        if not call.args:
            return
        payload = call.args[-1]
        if self._sealed(payload):
            return
        if isinstance(payload, ast.Name) and payload.id in self._params:
            self.sink_params.add(self._params[payload.id])
            return
        self.raw_writes.append(RawDurableWrite(
            call.lineno, surface, api, _display(call)))


# -- merge purity (RPL023 core) ---------------------------------------------

class PurityScan:
    """Which parameters / non-local state does this function mutate?

    ``mutates_params`` uses parameter indices and is translated at call
    sites (receiver -> callee param 0, positionals shifted for bound
    methods).  Mutations of program-class state reached through ``self``
    attributes become ``impure_effects`` strings, propagated verbatim
    through callers — merge functions registered with the parallel
    executor must keep that set empty.
    """

    def __init__(self, func: FunctionInfo, oracle: _Oracle) -> None:
        self.func = func
        self.oracle = oracle
        self.mutates: Set[int] = set()
        self.effects: Set[str] = set()
        self._params = {name: i for i, name in enumerate(func.params)}

    def run(self) -> None:
        ctx = self.oracle.graph.contexts[self.func.module]
        nodes = [n for n in ast.walk(self.func.node)
                 if ctx.enclosing_function(n) is self.func.node]
        for node in nodes:
            if isinstance(node, ast.Global):
                for name in node.names:
                    self.effects.add(f"writes global '{name}'")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._classify_store(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._classify_store(node.target)
            elif isinstance(node, ast.Call):
                self._classify_call(node)

    # - store classification -

    def _root_chain(self, expr: ast.expr
                    ) -> Tuple[Optional[str], List[str]]:
        """Root Name id + attribute chain of a store target/receiver."""
        chain: List[str] = []
        current = expr
        while True:
            if isinstance(current, ast.Attribute):
                chain.append(current.attr)
                current = current.value
            elif isinstance(current, ast.Subscript):
                current = current.value
            else:
                break
        if isinstance(current, ast.Name):
            return current.id, list(reversed(chain))
        return None, []

    def _note_mutation(self, root: Optional[str], chain: List[str],
                       store: bool) -> None:
        """A store through ``root(.chain)`` or a mutating call on it.

        ``store=True`` marks an assignment target (``x.a = v`` mutates
        x); a mutating *call* receiver needs no trailing attr.
        """
        if root is None:
            return
        if root == "self" and self.func.cls is not None:
            depth = len(chain) - (1 if store else 0)
            if depth <= 0:
                self.mutates.add(0)
                return
            # Mutating an object held in a self attribute: impure when
            # that attribute holds program-class state.
            attr = chain[0]
            types = self._attr_types(attr)
            program = sorted(
                self.oracle.graph.classes[t].name
                for t in types
                if t != EXTERNAL_TYPE and t in self.oracle.graph.classes)
            if program:
                owner = self.func.cls.name
                self.effects.add(
                    f"mutates {program[0]} state via "
                    f"{owner}.{attr}")
            else:
                self.mutates.add(0)
            return
        if root in self._params:
            self.mutates.add(self._params[root])

    def _attr_types(self, attr: str) -> Set[str]:
        graph = self.oracle.graph
        cls = self.func.cls
        if cls is None:
            return set()
        for ref in [cls.qualname] + graph._all_bases(cls.qualname):
            owner = graph.classes.get(ref)
            if owner is not None and attr in owner.attr_types:
                return set(owner.attr_types[attr])
        return set()

    def _classify_store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._classify_store(element)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root, chain = self._root_chain(target)
            self._note_mutation(root, chain, store=True)

    # - call classification -

    def _classify_call(self, call: ast.Call) -> None:
        name = _call_name(call)
        if name in MUTATING_ATTRS and isinstance(call.func, ast.Attribute):
            site = self.oracle.site(call)
            if site is None or not site.targets:
                root, chain = self._root_chain(call.func.value)
                self._note_mutation(root, chain, store=False)
        for site, summary in self.oracle.target_summaries(call):
            for effect in summary.impure_effects:
                self.effects.add(effect)
            if not summary.mutates_params:
                continue
            for target in site.targets:
                offset = _arg_offset(site, target)
                for param in summary.mutates_params:
                    if param == 0 and offset == 1:
                        arg: Optional[ast.expr] = call.func.value \
                            if isinstance(call.func, ast.Attribute) else None
                    else:
                        position = param - offset
                        arg = call.args[position] \
                            if 0 <= position < len(call.args) else None
                    if arg is None:
                        continue
                    root, chain = self._root_chain(arg)
                    self._note_mutation(root, chain, store=False)
                break


# -- one-function summarization ---------------------------------------------

def summarize(func: FunctionInfo, cfg: CFG, graph: CallGraph,
              summaries: Dict[str, FunctionSummary],
              lock_index: Optional[_LockIndex] = None) -> FunctionResult:
    """Run all the per-function analyses with callee summaries."""
    # Imported here (not at module level): typestate.py builds on this
    # module's helpers, so the import must run after it is fully loaded.
    from repro.analysis.dataflow.typestate import (
        AtomicityAnalysis, TypestateAnalysis,
    )

    oracle = _Oracle(graph, summaries)
    locks_idx = lock_index or _LockIndex(graph)

    resource = ResourceAnalysis(func, oracle)
    res_states = solve(cfg, resource)
    leaks = resource.leaks(cfg, res_states)

    locks = LockAnalysis(func, oracle, locks_idx)
    solve(cfg, locks)

    typestate = TypestateAnalysis(func, oracle)
    ts_states = solve(cfg, typestate)
    typestate.replay(cfg, ts_states)
    protocol_leaks = typestate.leaks(cfg, ts_states)

    atomicity = AtomicityAnalysis(func, oracle, locks_idx)
    at_states = solve(cfg, atomicity)
    atomicity.replay(cfg, at_states)

    # Taint pass 1: no tainted params -> intrinsic sources only.
    taint = TaintAnalysis(func, oracle)
    solve(cfg, taint)
    # Taint pass 2: all params tainted -> which params reach sinks?
    probe = TaintAnalysis(
        func, oracle,
        tainted_params=frozenset(range(len(func.params))))
    solve(cfg, probe)
    probe_sinks = frozenset(
        index for index, name in enumerate(func.params)
        if any(hit.source == f"parameter '{name}'"
               for hit in probe.hits))

    durability = DurabilityScan(func, oracle)
    durability.run()
    purity = PurityScan(func, oracle)
    purity.run()

    summary = FunctionSummary(
        qualname=func.qualname,
        returns_resource=resource.returns_resource,
        resource_kind=resource.resource_kind,
        releases_params=frozenset(resource.released_params),
        escape_params=frozenset(resource.escaped_params),
        returns_taint=taint.returns_taint,
        sink_params=probe_sinks,
        acquires_locks=frozenset(locks.acquired),
        attr_writes=frozenset(locks.attr_writes),
        blocking_calls=frozenset(locks.blocking),
        call_locks=frozenset(locks.call_locks),
        constructs=frozenset(locks.constructs),
        durable_sink_params=frozenset(durability.sink_params),
        returns_sealed=durability.returns_sealed,
        mutates_params=frozenset(purity.mutates),
        impure_effects=frozenset(purity.effects),
        protocol_ops=frozenset(typestate.protocol_ops),
        protocol_returns=typestate.protocol_returns,
    )
    return FunctionResult(
        summary=summary,
        leaks=leaks,
        lock_edges=sorted(locks.edges,
                          key=lambda e: (e.func, e.line, e.acquired)),
        taint_hits=sorted(taint.hits, key=lambda h: h.line),
        raw_durable_writes=sorted(durability.raw_writes,
                                  key=lambda w: w.line),
        protocol_violations=sorted(
            typestate.violations,
            key=lambda v: (v.line, v.protocol, v.event)),
        protocol_leaks=protocol_leaks,
        stale_writes=sorted(
            atomicity.stale_writes,
            key=lambda w: (w.line, w.name, w.attr)),
        thread_escapes=sorted(
            typestate.thread_escapes,
            key=lambda t: (t.line, t.protocol)),
    )
