"""Typestate interpretation of the protocol registry (RPL030–033 core).

:class:`TypestateAnalysis` runs each :class:`~repro.analysis.protocols.
ProtocolSpec` state machine over a function CFG in the same site/alias
shape as the RPL010 resource analysis: acquisition *sites* hold a set of
protocol states a subject may be in, *vars* map local names to the sites
they may alias.  Callee summaries plug in through two new
:class:`~repro.analysis.dataflow.summaries.FunctionSummary` fields —
``protocol_ops`` (events a callee applies to its parameters) and
``protocol_returns`` (the protocol value a callee hands back) — which is
what makes a ``commit`` buried two helpers deep still transition the
caller's transaction.

Reporting discipline:

* *Definite* violations only: an event is flagged when every non-escaped
  state the subject may be in is a violation state.  May-joins that keep
  one legal state (retry loops, guarded cleanup) stay silent.
* Violations and thread escapes are recorded on a post-fixpoint *replay*
  over the converged IN-states (``recording`` flag), never from the
  transient states of mid-fixpoint visits.
* Completion obligations (``must_complete`` protocols, i.e. MVCC reader
  handles) are may-leaks at the normal and exceptional exits, mirroring
  the RPL010 criterion — a ``finally:`` deregister reaches both exits,
  a happy-path-only one leaves the exceptional exit registered.

:class:`AtomicityAnalysis` (RPL031 core) is the check-then-act checker:
it binds names assigned from a latched read of a guarded attribute,
tracks whether that latch has been *continuously* held since, and flags
writes of the same attribute computed from the stale name after the
latch was released.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow.callgraph import (
    CallSite, FunctionInfo, RESOLVED,
)
from repro.analysis.dataflow.cfg import CFG, CFGNode
from repro.analysis.dataflow.lattice import ForwardAnalysis
from repro.analysis.dataflow.summaries import (
    CONTAINER_STORE_ATTRS,
    LOCKISH_ATTRS,
    ProtocolLeak,
    ProtocolViolation,
    StaleWrite,
    ThreadEscape,
    _LockIndex,
    _Oracle,
    _arg_offset,
    _call_name,
    _display,
    _known_none,
    _receiver_hint,
    _stmt_calls,
)
from repro.analysis.protocols import (
    ADVANCING_EVENT_NAMES,
    ARG0,
    ARG1,
    RECEIVER,
    RECV,
    SPECS,
    SPECS_BY_NAME,
    VALUE,
    Event,
    ProtocolSpec,
)
from repro.analysis.dataflow.callgraph import EXTERNAL_TYPE

#: status markers shared with no protocol state machine
UNKNOWN = "<unknown>"      #: a parameter: state owned by the caller
ESCAPED = "<escaped>"      #: left local reasoning (stored, returned, ...)
_MARKERS = frozenset({UNKNOWN, ESCAPED})


class _TsState:
    """sites: site-id -> protocol states; vars: name -> site-ids."""

    __slots__ = ("sites", "vars")

    def __init__(self, sites: Dict[str, FrozenSet[str]],
                 vars: Dict[str, FrozenSet[str]]) -> None:
        self.sites = sites
        self.vars = vars

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _TsState) \
            and self.sites == other.sites and self.vars == other.vars

    def copy(self) -> "_TsState":
        return _TsState(dict(self.sites), dict(self.vars))


def _ctor_arg_offset(site: CallSite, target: FunctionInfo,
                     call: ast.Call) -> int:
    """Like ``_arg_offset`` but aware that ``ClassName(...)`` resolves
    to ``__init__`` whose parameter 0 is ``self``."""
    if target.name == "__init__" and target.cls is not None \
            and not isinstance(call.func, ast.Attribute):
        return 1
    return _arg_offset(site, target)


class TypestateAnalysis(ForwardAnalysis[_TsState]):
    """Runs every registered protocol state machine over one function."""

    def __init__(self, func: FunctionInfo, oracle: _Oracle) -> None:
        self.func = func
        self.oracle = oracle
        #: site-id -> (line, human display of the subject)
        self.site_info: Dict[str, Tuple[int, str]] = {}
        self.site_protocol: Dict[str, str] = {}
        #: summary facts: (param index, protocol, event)
        self.protocol_ops: Set[Tuple[int, str, str]] = set()
        self.protocol_returns: Optional[Tuple[str, str]] = None
        #: evidence, recorded only while ``recording`` (post-solve replay)
        self.violations: Set[ProtocolViolation] = set()
        self.thread_escapes: Set[ThreadEscape] = set()
        self.recording = False
        self._nested_defs = self._scan_nested_defs()
        self._recv_seeds = self._scan_receiver_sites()

    # - one-time scans -

    def _scan_nested_defs(self) -> Dict[str, Set[str]]:
        """Nested function name -> names its body references (closure)."""
        captured: Dict[str, Set[str]] = {}
        for node in ast.walk(self.func.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not self.func.node:
                names = {sub.id for sub in ast.walk(node)
                         if isinstance(sub, ast.Name)}
                captured.setdefault(node.name, set()).update(names)
        return captured

    def _scan_receiver_sites(self) -> Dict[str, str]:
        """Receiver-tracked sites this function touches, seeded at entry.

        Seeding at entry (rather than creating the site at the first
        event) keeps the *implicit initial state* alive through joins: a
        branch that never fired an event still contributes ``initial``,
        so a conditionally-armed controller never reads as definitely
        armed after the merge.
        """
        ctx = self.oracle.graph.contexts.get(self.func.module)
        seeds: Dict[str, str] = {}
        for node in ast.walk(self.func.node):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            if ctx is not None \
                    and ctx.enclosing_function(node) is not self.func.node:
                continue
            key = self._recv_key(node.func.value)
            if key is None:
                continue
            for spec in SPECS:
                if spec.tracking != RECEIVER:
                    continue
                if spec.event(node.func.attr) is None:
                    continue
                if not self._applies(spec, node, frozenset()):
                    continue
                site = f"<recv:{spec.name}:{key}>"
                seeds[site] = spec.initial
                self.site_protocol[site] = spec.name
                self.site_info.setdefault(site, (node.lineno, key))
        return seeds

    # - framework hooks -

    def initial(self, cfg: CFG) -> _TsState:
        sites: Dict[str, FrozenSet[str]] = {}
        vars: Dict[str, FrozenSet[str]] = {}
        for index, name in enumerate(self.func.params):
            site = f"<param:{index}>"
            sites[site] = frozenset({UNKNOWN})
            vars[name] = frozenset({site})
        for site, initial_state in self._recv_seeds.items():
            sites[site] = frozenset({initial_state})
        return _TsState(sites, vars)

    def bottom(self) -> _TsState:
        return _TsState({}, {})

    def join(self, a: _TsState, b: _TsState) -> _TsState:
        sites = dict(a.sites)
        for site, statuses in b.sites.items():
            sites[site] = sites.get(site, frozenset()) | statuses
        vars = dict(a.vars)
        for name, ids in b.vars.items():
            vars[name] = vars.get(name, frozenset()) | ids
        return _TsState(sites, vars)

    def exc_state(self, node: CFGNode, pre: _TsState,
                  post: _TsState) -> _TsState:
        # An advancing event that itself raises is assumed to have taken
        # effect — a ``finally: deregister`` must not read as "still
        # registered" on its own exception edge.
        for call in _stmt_calls(node):
            if _call_name(call) in ADVANCING_EVENT_NAMES:
                return post
            for _site, summary in self.oracle.target_summaries(call):
                if summary.protocol_ops:
                    return post
        return pre

    def refine(self, node: CFGNode, state: _TsState) -> _TsState:
        assert node.branch is not None
        test, polarity = node.branch
        new = state

        # ``if txn is None`` kills the machine on the proven-None branch.
        name = _known_none(test, polarity)
        if name is not None:
            new = new.copy()
            for site in new.vars.get(name, frozenset()):
                statuses = new.sites.get(site, frozenset())
                if statuses & _MARKERS:
                    continue
                new.sites[site] = frozenset()

        # Declared boolean guards: ``if txn.is_active(): ...`` proves
        # the guard state on the true branch and excludes it on false.
        inner, proven_polarity = test, polarity
        while isinstance(inner, ast.UnaryOp) and isinstance(inner.op, ast.Not):
            inner, proven_polarity = inner.operand, not proven_polarity
        if isinstance(inner, ast.Call) \
                and isinstance(inner.func, ast.Attribute) \
                and isinstance(inner.func.value, ast.Name):
            guard_name = inner.func.attr
            subject = inner.func.value.id
            for spec in SPECS:
                for gname, proven in spec.guards:
                    if gname != guard_name:
                        continue
                    if new is state:
                        new = new.copy()
                    for site in new.vars.get(subject, frozenset()):
                        if self.site_protocol.get(site) != spec.name:
                            continue
                        statuses = new.sites.get(site, frozenset())
                        live = statuses - _MARKERS
                        keep = (live & {proven}) if proven_polarity \
                            else (live - {proven})
                        new.sites[site] = keep | (statuses & _MARKERS)
        return new

    # - state helpers -

    @staticmethod
    def _recv_key(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name):
            return f"{expr.value.id}.{expr.attr}"
        return None

    def _subject_sites(self, state: _TsState,
                       expr: Optional[ast.expr]) -> FrozenSet[str]:
        """Sites a subject expression may denote.

        Deliberately exact: a bare ``Name`` (aliases) or a direct
        nested ``Call`` (its origin site, by evaluation order).  An
        attribute like ``self.txn`` must NOT fall back to its base name
        — that would smear the machine onto ``self``.
        """
        if isinstance(expr, ast.Call):
            site = f"{expr.lineno}:{expr.col_offset}"
            if site in state.sites:
                return frozenset({site})
            return frozenset()
        if isinstance(expr, ast.Name):
            return state.vars.get(expr.id, frozenset())
        return frozenset()

    def _mark_escaped(self, state: _TsState, ids: FrozenSet[str]) -> None:
        for site in ids:
            statuses = state.sites.get(site)
            if statuses is None or UNKNOWN in statuses:
                continue
            state.sites[site] = statuses | frozenset({ESCAPED})

    def _escape_captured(self, state: _TsState, stmt: ast.stmt) -> None:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and sub.id in state.vars:
                self._mark_escaped(state, state.vars[sub.id])

    def _applies(self, spec: ProtocolSpec, call: ast.Call,
                 tracked: FrozenSet[str]) -> bool:
        """Is this call an event of ``spec``'s implementing surface?"""
        site = self.oracle.site(call)
        if site is not None and site.status == RESOLVED:
            return any(t.cls is not None and t.cls.name in spec.classes
                       for t in site.targets)
        hint = _receiver_hint(call)
        if hint in spec.hints:
            return True
        return any(self.site_protocol.get(s) == spec.name for s in tracked)

    # - transfer -

    def transfer(self, node: CFGNode, state: _TsState) -> _TsState:
        stmt = node.stmt
        new = state.copy()
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return new  # with-managed subjects complete via __exit__
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            self._escape_captured(new, stmt)
            return new

        bound_call: Optional[ast.Call] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Call):
            bound_call = stmt.value

        for call in _stmt_calls(node):
            self._apply_call(new, call,
                             in_return=isinstance(stmt, ast.Return))

        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._apply_target(new, target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._apply_target(new, stmt.target, stmt.value)
        elif isinstance(stmt, ast.Return):
            self._apply_return(new, stmt.value)
        elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom)):
            value = stmt.value.value
            self._mark_escaped(new, self._subject_sites(new, value))
        return new

    def _apply_call(self, state: _TsState, call: ast.Call,
                    in_return: bool) -> None:
        name = _call_name(call)
        handled_args: Set[int] = set()
        handled_protocols: Set[str] = set()

        self._check_thread_handoff(state, call, name)

        # 1. declared protocol events at this call
        if isinstance(call.func, ast.Attribute):
            for spec in SPECS:
                event = spec.event(name)
                if event is not None:
                    self._fire_declared(state, call, spec, event,
                                        handled_args, handled_protocols)

        # 2. events the callee applies to arguments (its summary ops)
        self._apply_callee_ops(state, call, handled_protocols)

        # 3. origins: a fresh protocol value is born at this call
        origin = self._origin_spec(call)
        if origin is not None:
            site_id = f"{call.lineno}:{call.col_offset}"
            self.site_info[site_id] = (call.lineno, _display(call))
            self.site_protocol[site_id] = origin.name
            statuses = frozenset({origin.initial})
            if in_return:
                statuses |= frozenset({ESCAPED})
                self.protocol_returns = (origin.name, origin.initial)
            state.sites[site_id] = statuses
        else:
            self._apply_callee_returns(state, call, in_return)

        # 4. escapes: unresolved calls and external container stores
        #    take the subject out of local reasoning; resolved callees
        #    escape exactly the arguments their summary says they store
        site = self.oracle.site(call)
        conservative = self.oracle.is_unresolved(call) or (
            name in CONTAINER_STORE_ATTRS
            and isinstance(call.func, ast.Attribute)
            and (site is None or not site.targets))
        if conservative:
            for position, arg in enumerate(call.args):
                if position in handled_args:
                    continue
                self._mark_escaped(state, self._subject_sites(state, arg))
        elif site is not None and site.targets:
            for target in site.targets:
                summary = self.oracle.summaries.get(target.qualname)
                if summary is None:
                    continue
                offset = _ctor_arg_offset(site, target, call)
                # A parameter the callee reported protocol events for is
                # precisely understood — its conservative escape (the
                # event receiver is usually itself a parameter there)
                # must not blind the caller to the transition.
                op_params = {pidx for pidx, _p, _e in summary.protocol_ops}
                for position, arg in enumerate(call.args):
                    if position in handled_args \
                            or position + offset in op_params:
                        continue
                    if position + offset in summary.escape_params:
                        self._mark_escaped(
                            state, self._subject_sites(state, arg))
                break

    def _subject_expr(self, call: ast.Call, event: Event
                      ) -> Tuple[Optional[ast.expr], Optional[int]]:
        """The event's subject expression and its positional-arg index."""
        if event.subject == RECV:
            assert isinstance(call.func, ast.Attribute)
            return call.func.value, None
        if event.subject == ARG0:
            return (call.args[0], 0) if call.args else (None, None)
        if event.subject == ARG1:
            return (call.args[1], 1) if len(call.args) > 1 else (None, None)
        return None, None

    def _fire_declared(self, state: _TsState, call: ast.Call,
                       spec: ProtocolSpec, event: Event,
                       handled_args: Set[int],
                       handled_protocols: Set[str]) -> None:
        subject, arg_pos = self._subject_expr(call, event)
        if subject is None:
            return

        if spec.tracking == RECEIVER:
            key = self._recv_key(subject)
            if key is None or not self._applies(spec, call, frozenset()):
                return
            site = f"<recv:{spec.name}:{key}>"
            if site not in state.sites:
                state.sites[site] = frozenset({spec.initial})
                self.site_protocol[site] = spec.name
                self.site_info.setdefault(site, (call.lineno, key))
            self._fire(state, frozenset({site}), spec, event, call)
            handled_protocols.add(spec.name)
            return

        ids = self._subject_sites(state, subject)
        relevant = frozenset(
            s for s in ids
            if s.startswith("<param:")
            or self.site_protocol.get(s) == spec.name)
        if not relevant or not self._applies(spec, call, relevant):
            return
        if self._fire(state, relevant, spec, event, call):
            handled_protocols.add(spec.name)
            if arg_pos is not None:
                handled_args.add(arg_pos)

    def _fire(self, state: _TsState, sites: FrozenSet[str],
              spec: ProtocolSpec, event: Event, call: ast.Call) -> bool:
        fired = False
        for site in sites:
            statuses = state.sites.get(site)
            if statuses is None:
                continue
            if UNKNOWN in statuses:
                # Parameter subject: the caller owns the state; export
                # the event instead of interpreting it here.
                if event.propagate and site.startswith("<param:"):
                    index = int(site[len("<param:"):-1])
                    self.protocol_ops.add((index, spec.name, event.name))
                fired = True
                continue
            live = statuses - _MARKERS
            if self.recording and live and ESCAPED not in statuses \
                    and live <= frozenset(event.violations):
                line, what = self.site_info.get(
                    site, (call.lineno, _display(call)))
                self.violations.add(ProtocolViolation(
                    line=call.lineno, protocol=spec.name, rule=spec.rule,
                    event=event.name, state=sorted(live)[0],
                    what=what, kind=spec.kind))
            state.sites[site] = frozenset(
                event.next_states(s) for s in live) | (statuses & _MARKERS)
            fired = True
        return fired

    def _apply_callee_ops(self, state: _TsState, call: ast.Call,
                          handled_protocols: Set[str]) -> None:
        for site, summary in self.oracle.target_summaries(call):
            if not summary.protocol_ops:
                continue
            for target in site.targets:
                offset = _ctor_arg_offset(site, target, call)
                for pidx, proto, ev_name in sorted(summary.protocol_ops):
                    if proto in handled_protocols:
                        continue
                    spec = SPECS_BY_NAME.get(proto)
                    event = spec.event(ev_name) if spec is not None else None
                    if event is None:
                        continue
                    expr = self._param_expr(call, pidx, offset)
                    if expr is None:
                        continue
                    self._fire(state, self._subject_sites(state, expr),
                               spec, event, call)
                break
            break

    @staticmethod
    def _param_expr(call: ast.Call, pidx: int,
                    offset: int) -> Optional[ast.expr]:
        if pidx == 0 and offset == 1:
            return call.func.value \
                if isinstance(call.func, ast.Attribute) else None
        position = pidx - offset
        if 0 <= position < len(call.args):
            return call.args[position]
        return None

    def _origin_spec(self, call: ast.Call) -> Optional[ProtocolSpec]:
        if not isinstance(call.func, ast.Attribute):
            return None
        name = _call_name(call)
        for spec in SPECS:
            if spec.tracking != VALUE or name not in spec.origin_names:
                continue
            site = self.oracle.site(call)
            if site is not None and site.status == RESOLVED:
                if any((t.module, t.name) in spec.origins
                       for t in site.targets):
                    return spec
                continue
            if _receiver_hint(call) in spec.hints:
                return spec
        return None

    def _apply_callee_returns(self, state: _TsState, call: ast.Call,
                              in_return: bool) -> None:
        for _site, summary in self.oracle.target_summaries(call):
            if summary.protocol_returns is None:
                continue
            proto, proto_state = summary.protocol_returns
            site_id = f"{call.lineno}:{call.col_offset}"
            self.site_info[site_id] = (call.lineno, _display(call))
            self.site_protocol[site_id] = proto
            statuses = frozenset({proto_state})
            if in_return:
                statuses |= frozenset({ESCAPED})
                self.protocol_returns = (proto, proto_state)
            state.sites[site_id] = statuses
            return

    def _check_thread_handoff(self, state: _TsState, call: ast.Call,
                              name: str) -> None:
        if name != "Thread":
            return
        candidates: Set[str] = set()
        for expr in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name):
                    candidates.add(sub.id)
                    candidates |= self._nested_defs.get(sub.id, set())
        for ref in sorted(candidates):
            for site in state.vars.get(ref, frozenset()):
                proto = self.site_protocol.get(site)
                statuses = state.sites.get(site, frozenset())
                if proto is None or not (statuses - _MARKERS):
                    continue
                if self.recording:
                    spec = SPECS_BY_NAME[proto]
                    line, what = self.site_info.get(
                        site, (call.lineno, ref))
                    self.thread_escapes.add(ThreadEscape(
                        line=call.lineno, protocol=proto,
                        kind=spec.kind, what=what))
                state.sites[site] = statuses | frozenset({ESCAPED})

    def _apply_target(self, state: _TsState, target: ast.expr,
                      value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if isinstance(value, ast.Call):
                site = f"{value.lineno}:{value.col_offset}"
                if site in self.site_protocol and site in state.sites:
                    state.vars[target.id] = frozenset({site})
                    return
            if isinstance(value, ast.Name):
                state.vars[target.id] = state.vars.get(
                    value.id, frozenset())
                return
            state.vars[target.id] = frozenset()
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._mark_escaped(state, self._subject_sites(state, value))
            if isinstance(value, ast.Call):
                site = f"{value.lineno}:{value.col_offset}"
                if site in self.site_protocol and site in state.sites:
                    state.sites[site] = \
                        state.sites[site] | frozenset({ESCAPED})
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    state.vars[element.id] = frozenset()

    def _apply_return(self, state: _TsState,
                      value: Optional[ast.expr]) -> None:
        if value is None:
            return
        elements = value.elts if isinstance(
            value, (ast.Tuple, ast.List)) else [value]
        for element in elements:
            ids = self._subject_sites(state, element)
            for site in ids:
                statuses = state.sites.get(site, frozenset())
                proto = self.site_protocol.get(site)
                live = statuses - _MARKERS
                if proto is not None and len(live) == 1:
                    self.protocol_returns = (proto, next(iter(live)))
            self._mark_escaped(state, ids)

    # - reporting -

    def replay(self, cfg: CFG, in_states: Dict[int, _TsState]) -> None:
        """Re-run transfer over converged IN-states, recording evidence."""
        self.recording = True
        try:
            for node in cfg.nodes:
                if node.is_proxy or node.stmt is None:
                    continue
                state = in_states.get(node.index)
                if state is not None:
                    self.transfer(node, state)
        finally:
            self.recording = False

    def leaks(self, cfg: CFG,
              in_states: Dict[int, _TsState]) -> List[ProtocolLeak]:
        found: Dict[str, ProtocolLeak] = {}
        for exit_node, exceptional in ((cfg.exit, False),
                                       (cfg.exc_exit, True)):
            state = in_states.get(exit_node.index)
            if state is None:
                continue
            for site, statuses in state.sites.items():
                proto = self.site_protocol.get(site)
                if proto is None:
                    continue
                spec = SPECS_BY_NAME[proto]
                if not spec.must_complete:
                    continue
                if statuses & _MARKERS:
                    continue
                live = statuses - _MARKERS
                if not live or live <= spec.complete:
                    continue
                line, what = self.site_info.get(site, (0, site))
                previous = found.get(site)
                if previous is None or (previous.exceptional
                                        and not exceptional):
                    found[site] = ProtocolLeak(
                        line, proto, spec.kind, what, exceptional)
        return sorted(found.values(), key=lambda leak: leak.line)


# -- check-then-act atomicity (RPL031 core) ---------------------------------

#: per-name fact: (latches at the read, latches held continuously since,
#: (class, attr) pairs read, line of the read)
_AtFact = Tuple[FrozenSet[str], FrozenSet[str],
                FrozenSet[Tuple[str, str]], int]


class AtomicityAnalysis(ForwardAnalysis[Dict[str, _AtFact]]):
    """Latched read feeding a write after the latch was released.

    ``x = self._count`` under ``with self._latch`` binds ``x`` as a
    *latched read* of ``(Counter, _count)``.  If ``self._count`` is
    later written from an expression mentioning ``x`` while the latch is
    no longer (continuously) held, the decision was made on a value
    another thread may have replaced — the classic check-then-act race.
    The RPL031 rule subtracts entry-lock contexts (functions always
    called with the latch held never lose continuity in their callers).
    """

    def __init__(self, func: FunctionInfo, oracle: _Oracle,
                 locks: _LockIndex) -> None:
        self.func = func
        self.oracle = oracle
        self.locks = locks
        self.local_types = oracle.graph._local_types(func)
        self.stale_writes: Set[StaleWrite] = set()
        self.recording = False

    def initial(self, cfg: CFG) -> Dict[str, _AtFact]:
        return {}

    def bottom(self) -> Dict[str, _AtFact]:
        return {}

    def join(self, a: Dict[str, _AtFact],
             b: Dict[str, _AtFact]) -> Dict[str, _AtFact]:
        out = dict(a)
        for name, fact_b in b.items():
            fact_a = out.get(name)
            if fact_a is None:
                out[name] = fact_b
            else:
                out[name] = (fact_a[0] | fact_b[0], fact_a[1] & fact_b[1],
                             fact_a[2] | fact_b[2],
                             min(fact_a[3], fact_b[3]))
        return out

    # - latch / attribute classification -

    def _lexical(self, node: CFGNode) -> FrozenSet[str]:
        held: Set[str] = set()
        for stmt in node.with_stack:
            for item in stmt.items:
                lock = self.locks.lock_id(self.func, self.local_types,
                                          item.context_expr)
                if lock is not None:
                    held.add(lock)
        return frozenset(held)

    def _own_latches(self, rtype: str) -> FrozenSet[str]:
        cls = self.oracle.graph.classes.get(rtype)
        owner = cls.name if cls is not None else rtype
        return frozenset(
            f"{owner}.{attr}" for cls_qual, attr in self.locks.assigned
            if cls_qual == rtype)

    def _guarded_reads(self, expr: ast.expr, held: FrozenSet[str]
                       ) -> Optional[Tuple[FrozenSet[str],
                                           FrozenSet[Tuple[str, str]]]]:
        """Latches + (class, attr) pairs of guarded reads in ``expr``."""
        latches: Set[str] = set()
        attrs: Set[Tuple[str, str]] = set()
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Attribute) \
                    or not isinstance(sub.ctx, ast.Load) \
                    or sub.attr in LOCKISH_ATTRS:
                continue
            for rtype in self.oracle.graph._receiver_types(
                    self.func, self.local_types, sub.value):
                if rtype == EXTERNAL_TYPE:
                    continue
                guarding = self._own_latches(rtype) & held
                if guarding:
                    latches.update(guarding)
                    attrs.add((rtype, sub.attr))
        if not attrs:
            return None
        return frozenset(latches), frozenset(attrs)

    # - transfer -

    def transfer(self, node: CFGNode,
                 state: Dict[str, _AtFact]) -> Dict[str, _AtFact]:
        held = self._lexical(node)
        new: Dict[str, _AtFact] = {
            name: (rheld, cont & held, attrs, line)
            for name, (rheld, cont, attrs, line) in state.items()
        }
        stmt = node.stmt
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return new

        self._check_writes(stmt, new, held)

        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            read = self._guarded_reads(stmt.value, held)
            if read is not None:
                latches, attrs = read
                new[name] = (latches, latches, attrs, stmt.lineno)
            else:
                new.pop(name, None)
        return new

    def _check_writes(self, stmt: Optional[ast.stmt],
                      state: Dict[str, _AtFact],
                      held: FrozenSet[str]) -> None:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            return
        mentioned = {sub.id for sub in ast.walk(value)
                     if isinstance(sub, ast.Name)}
        for target in targets:
            if isinstance(target, ast.Subscript):
                target = target.value
            if not isinstance(target, ast.Attribute):
                continue
            for rtype in self.oracle.graph._receiver_types(
                    self.func, self.local_types, target.value):
                if rtype == EXTERNAL_TYPE:
                    continue
                pair = (rtype, target.attr)
                for name, (rheld, cont, attrs, read_line) in state.items():
                    if pair not in attrs or name not in mentioned:
                        continue
                    if rheld & held:
                        continue  # re-latched before the write
                    lost = rheld - cont
                    if not lost:
                        continue  # latch held continuously since the read
                    if self.recording:
                        cls = self.oracle.graph.classes.get(rtype)
                        owner = cls.name if cls is not None else rtype
                        self.stale_writes.add(StaleWrite(
                            line=stmt.lineno, name=name,
                            latch=sorted(lost)[0], cls=owner,
                            attr=target.attr, read_line=read_line))

    def replay(self, cfg: CFG,
               in_states: Dict[int, Dict[str, _AtFact]]) -> None:
        self.recording = True
        try:
            for node in cfg.nodes:
                if node.is_proxy or node.stmt is None:
                    continue
                state = in_states.get(node.index)
                if state is not None:
                    self.transfer(node, state)
        finally:
            self.recording = False
