"""Thread-escape and entry-lock-context analysis (RPL020/RPL021 core).

Built entirely from the call graph plus converged function summaries, so
it works from cached summaries too:

* **thread roots** — functions passed as ``threading.Thread(target=...)``;
* **worker region** — everything a root can transitively call.  Resolved
  edges come from the call graph; *unresolved* named sites additionally
  pull in same-module functions with the matching bare name (a closure
  parameter like ``eval_partition`` is opaque to the graph but its
  candidates all live next to the spawner) and receivers typed through
  the lexically *enclosing* function's locals (``board.record()`` inside
  a nested worker body, where ``board`` is the spawner's local);
* **shared classes** — classes reachable from free variables the worker
  closures capture, closed over attribute types, bases and subclasses;
  minus classes the workers construct privately and classes reachable
  from the thread target's own parameters (the per-worker payload);
* **entry lock contexts** — for each worker-region function, the latches
  *always* held when workers enter it (a decreasing must-intersection
  over in-region call sites) and the latches *possibly* held (an
  increasing may-union), seeded at the thread roots with the empty set.

RPL020 then asks, per written attribute of a shared class: is the
effective held set (site latches + must-entry context) disjoint from
both the attribute's inferred guard and the owning class's own latches?
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow.callgraph import (
    EXTERNAL_TYPE, UNRESOLVED, CallGraph, FunctionInfo,
)
from repro.analysis.dataflow.summaries import FunctionSummary, _LockIndex


@dataclass(frozen=True)
class SharedWrite:
    """One write to a worker-shared attribute."""

    func: str                    #: writer qualname
    cls: str                     #: written class qualname
    attr: str
    line: int
    effective: FrozenSet[str]    #: site latches + must-entry context


class EffectsIndex:
    """Worker region, shared classes and entry lock contexts."""

    def __init__(self, graph: CallGraph,
                 summaries: Dict[str, FunctionSummary],
                 lock_index: _LockIndex) -> None:
        self.graph = graph
        self.summaries = summaries
        self.lock_index = lock_index
        self.thread_roots: List[FunctionInfo] = []
        self.payload_classes: Set[str] = set()
        self.worker_region: Set[str] = set()
        self.shared_classes: Set[str] = set()
        self.exempt_classes: Set[str] = set()
        self.entry_must: Dict[str, FrozenSet[str]] = {}
        self.entry_may: Dict[str, FrozenSet[str]] = {}
        #: (class qualname, attr) -> worker-region write sites
        self.write_sites: Dict[Tuple[str, str], List[SharedWrite]] = {}
        self._find_roots()
        self._close_region()
        self._compute_entry_contexts()
        self._compute_shared_classes()
        self._collect_write_sites()

    # -- thread roots ------------------------------------------------------

    def _find_roots(self) -> None:
        seen: Set[str] = set()
        for func in self.graph.functions.values():
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                name = callee.attr if isinstance(callee, ast.Attribute) \
                    else callee.id if isinstance(callee, ast.Name) else ""
                if name != "Thread":
                    continue
                for kw in node.keywords:
                    if kw.arg == "target":
                        target = self._resolve_target(func, kw.value)
                        if target is not None \
                                and target.qualname not in seen:
                            seen.add(target.qualname)
                            self.thread_roots.append(target)
        for root in self.thread_roots:
            args = root.node.args
            for arg in args.posonlyargs + args.args:
                self.payload_classes.update(
                    t for t in self.graph._annotation_class(
                        root.module, arg.annotation)
                    if t != EXTERNAL_TYPE)

    def _resolve_target(self, spawner: FunctionInfo,
                        expr: ast.expr) -> Optional[FunctionInfo]:
        if isinstance(expr, ast.Name):
            for node in ast.walk(spawner.node):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) \
                        and node.name == expr.id \
                        and node is not spawner.node:
                    return self.graph.function_for_node(
                        spawner.module, node)
            entry = self.graph._lookup_scope(spawner.module, expr.id)
            if entry is not None and entry[0] == "func":
                return self.graph.functions.get(entry[1])
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" and spawner.cls is not None:
            return self.graph.lookup_method(spawner.cls.qualname,
                                            expr.attr)
        return None

    # -- worker region -----------------------------------------------------

    def _merged_local_types(self,
                            func: FunctionInfo) -> Dict[str, Set[str]]:
        """Local types including the lexically enclosing functions'."""
        ctx = self.graph.contexts[func.module]
        chain: List[ast.AST] = []
        node: ast.AST = func.node
        while True:
            enclosing = ctx.enclosing_function(node)
            if enclosing is None:
                break
            chain.append(enclosing)
            node = enclosing
        merged: Dict[str, Set[str]] = {}
        for enclosing_node in reversed(chain):
            enclosing = self.graph.function_for_node(
                func.module, enclosing_node)
            if enclosing is not None:
                merged.update(self.graph._local_types(enclosing))
        merged.update(self.graph._local_types(func))
        return merged

    def _close_region(self) -> None:
        queue = [r.qualname for r in self.thread_roots]
        region = set(queue)
        while queue:
            qualname = queue.pop()
            func = self.graph.functions.get(qualname)
            if func is None:
                continue
            for site in self.graph.sites_in(func):
                found: List[FunctionInfo] = list(site.targets)
                if not found and site.status == UNRESOLVED and site.name:
                    found = self._unresolved_candidates(func, site)
                for target in found:
                    if target.qualname not in region:
                        region.add(target.qualname)
                        queue.append(target.qualname)
        self.worker_region = region

    def _unresolved_candidates(self, func: FunctionInfo,
                               site) -> List[FunctionInfo]:
        candidates: List[FunctionInfo] = []
        if isinstance(site.call.func, ast.Attribute):
            # Receiver typed through the enclosing closure's locals
            # (``board.record()`` where ``board`` is the spawner's
            # local).  An attribute call whose receiver stays untyped
            # does NOT fall back to name matching — pulling every
            # same-module ``close``/``rollback`` into the worker region
            # would drown the rule in paths workers cannot take.
            merged = self._merged_local_types(func)
            for rtype in sorted(self.graph._receiver_types(
                    func, merged, site.call.func.value)):
                if rtype == EXTERNAL_TYPE:
                    continue
                candidates.extend(
                    t for t in self.graph._override_targets(
                        rtype, site.name)
                    if t not in candidates)
            return candidates
        # Bare-name fallback for Name calls only: a closure-parameter
        # callee (``eval_partition``) is invisible to the call graph,
        # but its candidates all live in the spawning module.
        for other in self.graph.functions.values():
            if other.module == func.module and other.name == site.name \
                    and other.qualname != func.qualname:
                candidates.append(other)
        return candidates

    # -- entry lock contexts -----------------------------------------------

    def _compute_entry_contexts(self) -> None:
        region = self.worker_region
        records: Dict[str, List[Tuple[str, Tuple[str, ...]]]] = {}
        universe: Set[str] = set(
            f"{cls.name}.{attr}"
            for (cls_qual, attr) in self.lock_index.assigned
            for cls in [self.graph.classes[cls_qual]])
        for qualname in region:
            summary = self.summaries.get(qualname)
            if summary is None:
                continue
            universe.update(summary.acquires_locks)
            for callee, held in summary.call_locks:
                universe.update(held)
                if callee in region:
                    records.setdefault(callee, []).append(
                        (qualname, held))
        roots = {r.qualname for r in self.thread_roots}
        # Functions reached through unresolved edges have no call-lock
        # records: assume nothing is held on entry (the safe direction).
        full = frozenset(universe)
        self.entry_must = {
            q: frozenset() if q in roots or q not in records else full
            for q in region
        }
        self.entry_may = {q: frozenset() for q in region}
        changed = True
        while changed:
            changed = False
            for qualname in region:
                if qualname in roots or qualname not in records:
                    continue
                must = full
                may: FrozenSet[str] = self.entry_may[qualname]
                for caller, held in records[qualname]:
                    entering = frozenset(held) | self.entry_must[caller]
                    must = must & entering
                    may = may | frozenset(held) | self.entry_may[caller]
                if must != self.entry_must[qualname] \
                        or may != self.entry_may[qualname]:
                    self.entry_must[qualname] = must
                    self.entry_may[qualname] = may
                    changed = True

    # -- shared classes ----------------------------------------------------

    def _class_closure(self, seeds: Set[str],
                       include_bases: bool = False) -> Set[str]:
        closed: Set[str] = set()
        queue = [s for s in seeds if s in self.graph.classes]
        while queue:
            qualname = queue.pop()
            if qualname in closed:
                continue
            closed.add(qualname)
            cls = self.graph.classes.get(qualname)
            if cls is None:
                continue
            for types in cls.attr_types.values():
                queue.extend(t for t in types
                             if t != EXTERNAL_TYPE
                             and t in self.graph.classes)
            queue.extend(cls.subclasses)
            if include_bases:
                queue.extend(self.graph._all_bases(qualname))
        return closed

    def _free_var_classes(self, func: FunctionInfo) -> Set[str]:
        bound: Set[str] = set(func.params)
        loaded: Set[str] = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    bound.add(node.id)
                else:
                    loaded.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func.node:
                    bound.add(node.name)
        merged = self._merged_local_types(func)
        classes: Set[str] = set()
        for name in loaded - bound - {"self"}:
            classes.update(t for t in merged.get(name, ())
                           if t != EXTERNAL_TYPE)
        if func.cls is not None and "self" in loaded:
            classes.add(func.cls.qualname)
        return classes

    def _compute_shared_classes(self) -> None:
        ctx_of = self.graph.contexts
        seeds: Set[str] = set()
        for root in self.thread_roots:
            seeds.update(self._free_var_classes(root))
        for qualname in self.worker_region:
            func = self.graph.functions.get(qualname)
            if func is None:
                continue
            if ctx_of[func.module].enclosing_function(func.node) is not None:
                seeds.update(self._free_var_classes(func))
        constructed: Set[str] = set()
        for qualname in self.worker_region:
            summary = self.summaries.get(qualname)
            if summary is not None:
                constructed.update(summary.constructs)
        self.exempt_classes = (
            self._class_closure(self.payload_classes) | constructed)
        self.shared_classes = self._class_closure(
            seeds, include_bases=True) - self.exempt_classes

    # -- shared write sites ------------------------------------------------

    def _collect_write_sites(self) -> None:
        for qualname in self.worker_region:
            func = self.graph.functions.get(qualname)
            summary = self.summaries.get(qualname)
            if func is None or summary is None \
                    or func.name == "__init__":
                continue
            entry = self.entry_must.get(qualname, frozenset())
            for cls_qual, attr, line, held in summary.attr_writes:
                candidates = {cls_qual}
                # A write in a base-class method counts against every
                # shared subclass too (the instance may be the subclass).
                cls = self.graph.classes.get(cls_qual)
                if cls is not None:
                    candidates.update(cls.subclasses)
                matched = candidates & self.shared_classes
                if not matched:
                    continue
                effective = frozenset(held) | entry
                # Anchor on the defining class so one declaration site
                # yields one finding even with many shared subclasses.
                anchor = cls_qual if cls_qual in matched \
                    else sorted(matched)[0]
                self.write_sites.setdefault((anchor, attr), []).append(
                    SharedWrite(qualname, anchor, attr, line, effective))

    # -- queries -----------------------------------------------------------

    def own_latches(self, cls_qual: str) -> FrozenSet[str]:
        """Latch ids assigned on ``cls_qual`` or its bases."""
        refs = [cls_qual] + self.graph._all_bases(cls_qual)
        out: Set[str] = set()
        for (owner_qual, attr) in self.lock_index.assigned:
            if owner_qual in refs:
                owner = self.graph.classes[owner_qual]
                out.add(f"{owner.name}.{attr}")
        return frozenset(out)

    def inferred_guard(self, key: Tuple[str, str]) -> FrozenSet[str]:
        """Locks held at *every* latched write site of (class, attr)."""
        latched = [w.effective for w in self.write_sites.get(key, ())
                   if w.effective]
        if not latched:
            return frozenset()
        guard = set(latched[0])
        for effective in latched[1:]:
            guard &= effective
        return frozenset(guard)

    def unguarded_writes(self) -> List[SharedWrite]:
        """Write sites whose effective latches miss both the inferred
        guard and the owning class's own latches."""
        flagged: List[SharedWrite] = []
        for key, writes in sorted(self.write_sites.items()):
            own = self.own_latches(key[0])
            guard = self.inferred_guard(key)
            for write in writes:
                if not (write.effective & (guard | own)):
                    flagged.append(write)
        return flagged
