"""Per-function control-flow graphs with exception edges.

One :class:`CFGNode` per statement, plus synthetic ``entry``, ``exit``
(normal return) and ``exc-exit`` (uncaught exception) nodes.  Edges are
*normal* (sequential control transfer) or *exceptional* (the source
statement raised before completing; the state carried along the edge is
decided by the analysis, see :mod:`repro.analysis.dataflow.lattice`).

Compound statements contribute one node for their *header* (the test of
an ``if``/``while``, the iterable of a ``for``, the context expressions
of a ``with``); their bodies are wired recursively.  Analyses must only
interpret the executed part of a node's statement — use
:func:`exec_parts` for exactly that.

Modelling decisions (all biased toward *may*-analyses, where a spurious
path costs precision but never soundness):

* A statement may raise iff its executed part contains a call,
  ``await``, ``raise`` or ``assert``.  Attribute/subscript/arithmetic
  errors are deliberately ignored: everything the interprocedural rules
  care about funnels through calls, and treating ``page.dirty = True``
  as a throw site would flag every ownership transfer that touches the
  resource before returning it.
* ``if`` branches are entered through *branch proxy* nodes labelled
  with the test expression and its polarity, so analyses can refine
  ``if x is not None: release(x)`` guards path-sensitively.
* ``with`` blocks are transparent to control flow, but every node is
  annotated with its lexical ``with`` chain (``with_stack``) so analyses
  can model ``__exit__``-style release without finally machinery.
* ``try``/``finally`` instantiates the finally body **twice**: a normal
  copy (falls through to the statement after the try) and an *unwind*
  copy, entered from exception edges and from ``return`` inside the try,
  whose tail continues to both the enclosing exception target and the
  function exit.  The merged unwind continuation over-approximates
  paths; findings deduplicate per acquisition site so this never
  multiplies reports.
* ``break``/``continue`` edge directly to their loop targets; finally
  effects on those two paths are skipped (documented
  under-approximation).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

#: node kinds
ENTRY = "entry"
EXIT = "exit"
EXC_EXIT = "exc-exit"
STMT = "stmt"


def exec_parts(stmt: ast.stmt) -> List[ast.AST]:
    """The AST fragments a compound statement's header actually executes.

    For simple statements this is the statement itself; for compound
    statements only the header expressions (a ``for`` body is wired as
    separate CFG nodes and must not be re-interpreted at the header).
    """
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        parts: List[ast.AST] = list(stmt.decorator_list)
        parts.extend(stmt.args.defaults)
        parts.extend(d for d in stmt.args.kw_defaults if d is not None)
        return parts
    if isinstance(stmt, ast.ClassDef):
        return list(stmt.decorator_list) + list(stmt.bases) \
            + [kw.value for kw in stmt.keywords]
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        parts = []
        for item in stmt.items:
            parts.append(item.context_expr)
            if item.optional_vars is not None:
                parts.append(item.optional_vars)
        return parts
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _may_raise(stmt: ast.stmt) -> bool:
    """Conservative: may executing this statement's header raise?"""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for part in exec_parts(stmt):
        for node in ast.walk(part):
            if isinstance(node, (ast.Call, ast.Await)):
                return True
    return False


class CFGNode:
    """One CFG node: a statement occurrence or a synthetic boundary."""

    __slots__ = ("index", "kind", "stmt", "succs", "esuccs", "with_stack",
                 "in_unwind", "is_proxy", "branch")

    def __init__(self, index: int, kind: str,
                 stmt: Optional[ast.stmt] = None,
                 is_proxy: bool = False) -> None:
        self.index = index
        self.kind = kind
        self.stmt = stmt
        self.is_proxy = is_proxy  #: join/dispatch point: identity transfer
        self.succs: List[int] = []       #: normal successor indices
        self.esuccs: List[int] = []      #: exceptional successor indices
        #: enclosing ``with`` statements, outermost first
        self.with_stack: Tuple[ast.stmt, ...] = ()
        #: True for nodes in the unwind copy of a finally body
        self.in_unwind = False
        #: (test expression, polarity) for an ``if`` branch proxy
        self.branch: Optional[Tuple[ast.expr, bool]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = type(self.stmt).__name__ if self.stmt is not None else ""
        return f"<CFGNode {self.index} {self.kind} {what}>"


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: List[CFGNode] = []
        self.entry = self._new(ENTRY)
        self.exit = self._new(EXIT)
        self.exc_exit = self._new(EXC_EXIT)

    def _new(self, kind: str, stmt: Optional[ast.stmt] = None,
             is_proxy: bool = False) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, stmt, is_proxy)
        self.nodes.append(node)
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode,
                 exceptional: bool = False) -> None:
        bucket = src.esuccs if exceptional else src.succs
        if dst.index not in bucket:
            bucket.append(dst.index)


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.with_stack: List[ast.stmt] = []
        #: entries of enclosing unwind finally copies, innermost last
        self.finally_unwind: List[CFGNode] = []
        self.loop_stack: List[Tuple[CFGNode, CFGNode]] = []  # (cont, brk)
        self.in_unwind = 0

    # -- helpers -----------------------------------------------------------

    def node(self, stmt: ast.stmt, is_proxy: bool = False) -> CFGNode:
        node = self.cfg._new(STMT, stmt, is_proxy)
        node.with_stack = tuple(self.with_stack)
        node.in_unwind = bool(self.in_unwind)
        return node

    def connect(self, sources: Sequence[CFGNode], dst: CFGNode) -> None:
        for src in sources:
            self.cfg.add_edge(src, dst)

    def raise_edge(self, node: CFGNode,
                   targets: Sequence[CFGNode]) -> None:
        for target in targets:
            self.cfg.add_edge(node, target, exceptional=True)

    def return_targets(self) -> List[CFGNode]:
        """Where ``return`` transfers control: unwind finally, else exit."""
        if self.finally_unwind:
            return [self.finally_unwind[-1]]
        return [self.cfg.exit]

    # -- construction ------------------------------------------------------

    def build(self, body: Sequence[ast.stmt], prev: List[CFGNode],
              exc: List[CFGNode]) -> List[CFGNode]:
        """Wire ``body`` after ``prev``; returns the dangling normal exits."""
        for stmt in body:
            prev = self._stmt(stmt, prev, exc)
        return prev

    def _stmt(self, stmt: ast.stmt, prev: List[CFGNode],
              exc: List[CFGNode]) -> List[CFGNode]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, prev, exc)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, prev, exc)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, prev, exc)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, prev, exc)

        node = self.node(stmt)
        self.connect(prev, node)
        if _may_raise(stmt):
            self.raise_edge(node, exc)

        if isinstance(stmt, ast.Return):
            for target in self.return_targets():
                self.cfg.add_edge(node, target)
            return []
        if isinstance(stmt, ast.Raise):
            self.raise_edge(node, exc)
            return []
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                self.cfg.add_edge(node, self.loop_stack[-1][1])
            return []
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self.cfg.add_edge(node, self.loop_stack[-1][0])
            return []
        return [node]

    def _if(self, stmt: ast.If, prev: List[CFGNode],
            exc: List[CFGNode]) -> List[CFGNode]:
        test = self.node(stmt)
        self.connect(prev, test)
        if _may_raise(stmt):
            self.raise_edge(test, exc)
        then_entry = self.node(stmt, is_proxy=True)
        then_entry.branch = (stmt.test, True)
        else_entry = self.node(stmt, is_proxy=True)
        else_entry.branch = (stmt.test, False)
        self.connect([test], then_entry)
        self.connect([test], else_entry)
        then_exits = self.build(stmt.body, [then_entry], exc)
        else_exits = self.build(stmt.orelse, [else_entry], exc) \
            if stmt.orelse else [else_entry]
        return then_exits + else_exits

    def _loop(self, stmt, prev: List[CFGNode],
              exc: List[CFGNode]) -> List[CFGNode]:
        head = self.node(stmt)
        self.connect(prev, head)
        if _may_raise(stmt):
            self.raise_edge(head, exc)
        after = self.node(stmt, is_proxy=True)  # join point past the loop
        self.loop_stack.append((head, after))
        body_exits = self.build(stmt.body, [head], exc)
        self.loop_stack.pop()
        self.connect(body_exits, head)
        else_exits = self.build(stmt.orelse, [head], exc) \
            if stmt.orelse else [head]
        self.connect(else_exits, after)
        return [after]

    def _with(self, stmt, prev: List[CFGNode],
              exc: List[CFGNode]) -> List[CFGNode]:
        enter = self.node(stmt)
        self.connect(prev, enter)
        if _may_raise(stmt):
            self.raise_edge(enter, exc)
        self.with_stack.append(stmt)
        body_exits = self.build(stmt.body, [enter], exc)
        self.with_stack.pop()
        return body_exits

    def _try(self, stmt: ast.Try, prev: List[CFGNode],
             exc: List[CFGNode]) -> List[CFGNode]:
        # Unwind copy of the finally body (exception / return paths).
        unwind_entry: Optional[CFGNode] = None
        if stmt.finalbody:
            unwind_entry = self.node(stmt, is_proxy=True)
            unwind_entry.in_unwind = True
            self.in_unwind += 1
            unwind_exits = self.build(stmt.finalbody, [unwind_entry], exc)
            self.in_unwind -= 1
            for tail in unwind_exits:
                # The suppressed exception (or pending return) continues.
                self.connect([tail], self.cfg.exit)
                for target in exc:
                    self.cfg.add_edge(tail, target)

        # Exception targets while executing the try body.
        handler_proxies = [self.node(h, is_proxy=True)
                           for h in stmt.handlers]
        body_exc: List[CFGNode] = list(handler_proxies)
        if unwind_entry is not None:
            body_exc.append(unwind_entry)   # no handler matched
        if not body_exc:
            body_exc = list(exc)

        if unwind_entry is not None:
            self.finally_unwind.append(unwind_entry)
        body_exits = self.build(stmt.body, prev, body_exc)
        else_exits = self.build(stmt.orelse, body_exits, body_exc) \
            if stmt.orelse else body_exits

        handler_exc = [unwind_entry] if unwind_entry is not None \
            else list(exc)
        handler_exits: List[CFGNode] = []
        for handler, proxy in zip(stmt.handlers, handler_proxies):
            handler_exits.extend(
                self.build(handler.body, [proxy], handler_exc))
        if unwind_entry is not None:
            self.finally_unwind.pop()

        normal_into_finally = else_exits + handler_exits
        if stmt.finalbody:
            return self.build(stmt.finalbody, normal_into_finally, exc)
        return normal_into_finally


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one function/method body."""
    cfg = CFG(func)
    builder = _Builder(cfg)
    exits = builder.build(list(func.body), [cfg.entry], [cfg.exc_exit])
    for tail in exits:
        cfg.add_edge(tail, cfg.exit)
    return cfg
