"""Query scheduler: concurrent retrospective queries over one store.

Each submitted mechanism call becomes a :class:`QueryTicket` running on
its own dispatcher thread.  Retrospective reads are snapshot-pinned, so
any number of tickets across sessions run concurrently without blocking
writers; result-table writes (and only those) take the shared write
gate.

Admission is **certificate-gated** (the rqlint merge-class analysis):

* a mechanism whose certificate matches its expected merge class
  (``concat``, ``monoid``, ``stored-row``, ``interval-stitch``) may run
  *partitioned* — its snapshot partitions are dispatched through the
  server-wide :class:`~repro.core.parallel.WorkerPool`;
* a ``serial-only`` verdict (stateful builtin in Qq, non-monoid
  aggregate, ...) runs the classic serial loop instead — still
  concurrently with other sessions' queries, just not partitioned
  within itself.

Every ticket carries a cancel event wired into both paths: the serial
loop polls it between snapshot iterations, the parallel executor's
partition workers poll it between iterations and the run surfaces
:class:`~repro.errors.QueryCancelled` after every worker retired.  The
server sets it when a client disconnects mid-query; the scheduler then
drops the partial result table so a cancelled query leaves no debris.

A session runs **one query at a time** (a per-session dispatch lock):
one client connection is one logical stream of statements, and the
session facade's per-statement transaction state is not a concurrent
structure.  Distinct sessions are where the concurrency is.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.core import RQLSession
from repro.core.mechanisms import (
    AggregateDataInTableRun,
    AggregateDataInVariableRun,
    CollateDataIntoIntervalsRun,
    CollateDataRun,
    RQLResult,
)
from repro.core.parallel import ParallelExecutor
from repro.errors import QueryCancelled, ReproError, ServerError

from repro.server.store import SharedStore

#: mechanism name -> (certificate name, serial run class, takes an arg)
_MECHANISMS = {
    "collate_data": ("CollateData", CollateDataRun, False),
    "aggregate_data_in_variable": (
        "AggregateDataInVariable", AggregateDataInVariableRun, True),
    "aggregate_data_in_table": (
        "AggregateDataInTable", AggregateDataInTableRun, True),
    "collate_data_into_intervals": (
        "CollateDataIntoIntervals", CollateDataIntoIntervalsRun, False),
}


class QueryTicket:
    """One in-flight (or finished) retrospective query."""

    def __init__(self, ticket_id: int, session_name: str,
                 mechanism: str, table: str) -> None:
        self.id = ticket_id
        self.session_name = session_name
        self.mechanism = mechanism
        self.table = table
        #: set to request cancellation (client disconnect, shutdown)
        self.cancel = threading.Event()
        #: set exactly once, after the dispatcher thread fully retired
        self.done = threading.Event()
        #: RQLResult for mechanism tickets; a views.RefreshReport for
        #: refresh tickets
        self.result = None
        self.error: Optional[BaseException] = None
        #: True when the run was partitioned through the worker pool
        self.partitioned = False

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.done.wait(timeout)

    def outcome(self) -> RQLResult:
        """Block until done; re-raise the query's error, if any."""
        self.done.wait()
        error = self.error
        if error is not None:
            raise error
        assert self.result is not None
        return self.result


class QueryScheduler:
    """Admits, runs, cancels and accounts retrospective queries."""

    def __init__(self, store: SharedStore) -> None:
        self._store = store
        self._latch = threading.RLock()
        self._active: Dict[int, QueryTicket] = {}
        self._session_locks: Dict[str, threading.Lock] = {}
        self._next_id = 1
        self._closed = False

    # -- submission ---------------------------------------------------------

    def submit(self, session: RQLSession, mechanism: str, qs: str, qq: str,
               table: str, arg: object = None, persistent: bool = False,
               workers: Optional[int] = None) -> QueryTicket:
        """Run ``mechanism`` asynchronously; returns its ticket."""
        if mechanism not in _MECHANISMS:
            raise ServerError(
                f"unknown mechanism {mechanism!r}; one of "
                f"{sorted(_MECHANISMS)}"
            )
        if session.name is None:
            raise ServerError(
                "scheduler sessions need a name (open them through the "
                "registry)"
            )
        with self._latch:
            if self._closed:
                raise ServerError("scheduler is shut down")
            ticket = QueryTicket(self._next_id, session.name, mechanism,
                                 table)
            self._next_id += 1
            self._active[ticket.id] = ticket
            lock = self._session_locks.setdefault(session.name,
                                                  threading.Lock())
        thread = threading.Thread(
            target=self._run,
            args=(lock, session, ticket, qs, qq, table, arg, persistent,
                  workers),
            name=f"rql-query-{ticket.id}",
        )
        thread.start()
        return ticket

    def run(self, session: RQLSession, mechanism: str, qs: str, qq: str,
            table: str, arg: object = None, persistent: bool = False,
            workers: Optional[int] = None) -> RQLResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(session, mechanism, qs, qq, table, arg=arg,
                           persistent=persistent,
                           workers=workers).outcome()

    def submit_refresh(self, session: RQLSession, name: str,
                       full: bool = False) -> QueryTicket:
        """Run ``REFRESH MATERIALIZED VIEW name`` asynchronously.

        Refresh admission is a **write**: the whole refresh holds the
        store's write gate (via the view manager) while concurrently
        pinned readers keep seeing the stale-but-consistent pre-refresh
        contents through MVCC.  Unlike mechanism tickets, a cancelled
        refresh must NOT drop its table — the view's single commit
        already guarantees the stored result is fully old or fully new,
        and dropping it would destroy the committed base.
        """
        if session.name is None:
            raise ServerError(
                "scheduler sessions need a name (open them through the "
                "registry)"
            )
        with self._latch:
            if self._closed:
                raise ServerError("scheduler is shut down")
            ticket = QueryTicket(self._next_id, session.name,
                                 "refresh_view", name)
            self._next_id += 1
            self._active[ticket.id] = ticket
            lock = self._session_locks.setdefault(session.name,
                                                  threading.Lock())
        thread = threading.Thread(
            target=self._run_refresh,
            args=(lock, session, ticket, name, full),
            name=f"rql-refresh-{ticket.id}",
        )
        thread.start()
        return ticket

    def refresh(self, session: RQLSession, name: str,
                full: bool = False):
        """Synchronous convenience wrapper around :meth:`submit_refresh`;
        returns the :class:`~repro.retro.views.RefreshReport`."""
        return self.submit_refresh(session, name, full=full).outcome()

    # -- execution ----------------------------------------------------------

    def _run(self, lock: threading.Lock, session: RQLSession,
             ticket: QueryTicket, qs: str, qq: str, table: str,
             arg: object, persistent: bool,
             workers: Optional[int]) -> None:
        try:
            with lock:
                ticket.result = self._execute(session, ticket, qs, qq,
                                              table, arg, persistent,
                                              workers)
        except QueryCancelled as exc:
            ticket.error = exc
            self._drop_partial(session, table)
        except BaseException as exc:  # replint: taxonomy-exempt -- stored on the ticket; outcome() re-raises it
            ticket.error = exc
        finally:
            with self._latch:
                self._active.pop(ticket.id, None)
            ticket.done.set()

    def _run_refresh(self, lock: threading.Lock, session: RQLSession,
                     ticket: QueryTicket, name: str, full: bool) -> None:
        try:
            with lock:
                if ticket.cancel.is_set():
                    raise QueryCancelled(
                        f"refresh of {name!r} cancelled before admission"
                    )
                ticket.result = session.views.refresh(
                    name, full=full, cancel=ticket.cancel)
        except BaseException as exc:  # replint: taxonomy-exempt -- stored on the ticket; outcome() re-raises it
            # Deliberately no _drop_partial: the view table is only ever
            # replaced by the refresh's single atomic commit, so on any
            # failure (including cancellation) the committed base result
            # is still exact for its recorded built_from snapshot.
            ticket.error = exc
        finally:
            with self._latch:
                self._active.pop(ticket.id, None)
            ticket.done.set()

    def _execute(self, session: RQLSession, ticket: QueryTicket, qs: str,
                 qq: str, table: str, arg: object, persistent: bool,
                 workers: Optional[int]) -> RQLResult:
        from repro.analysis.query.mergeclass import MECHANISM_CLASSES

        cert_name, run_class, takes_arg = _MECHANISMS[ticket.mechanism]
        db = session.db
        count = session._effective_workers(workers)
        executor = ParallelExecutor(db, workers=max(count, 1),
                                    pool=self._store.pool,
                                    cancel=ticket.cancel)
        certificate = executor.certify(cert_name, qs, qq, arg)
        expected = MECHANISM_CLASSES[cert_name.replace("_", "").lower()]
        session._drop_result_table(table)
        if ticket.cancel.is_set():
            raise QueryCancelled(
                f"query over {table!r} cancelled before admission"
            )
        if count > 1 and certificate.merge_class == expected:
            ticket.partitioned = True
            method = getattr(executor, ticket.mechanism)
            call_args = (qs, qq, table) + ((arg,) if takes_arg else ())
            return method(*call_args, persistent,
                          certificate=certificate)
        # serial-only certificate (or workers == 1): the classic loop,
        # metered through a thread-local sink so concurrent queries on
        # the shared engines never cross their metrics.
        ctor_args = (db, qq, table) + ((arg,) if takes_arg else ())
        run = run_class(*ctor_args, persistent)
        with db.engine.retro.route_metrics(run.sink):
            return run.run(qs, cancel=ticket.cancel)

    def _drop_partial(self, session: RQLSession, table: str) -> None:
        """A cancelled run must not leave a half-built result table."""
        try:
            session._drop_result_table(table)
        except ReproError:
            # Best effort: the session may be mid-teardown; the table
            # lives in the aux engine and dies with the store anyway.
            pass

    # -- cancellation / accounting ------------------------------------------

    def tickets_for(self, session_name: str) -> List[QueryTicket]:
        with self._latch:
            return [t for t in self._active.values()
                    if t.session_name == session_name]

    def active_count(self) -> int:
        with self._latch:
            return len(self._active)

    def cancel_session(self, session_name: str,
                       wait: bool = True) -> int:
        """Cancel every in-flight query of one session.

        Returns how many tickets were signalled; with ``wait`` (the
        default) blocks until each has fully retired — the contract the
        registry relies on before tearing the session down.
        """
        tickets = self.tickets_for(session_name)
        for ticket in tickets:
            ticket.cancel.set()
        if wait:
            for ticket in tickets:
                ticket.done.wait()
        return len(tickets)

    def drain_session(self, session_name: str) -> int:
        """Wait for a session's queries without cancelling them."""
        tickets = self.tickets_for(session_name)
        for ticket in tickets:
            ticket.done.wait()
        return len(tickets)

    def shutdown(self) -> int:
        """Cancel everything, wait for it, refuse new submissions."""
        with self._latch:
            self._closed = True
            tickets = list(self._active.values())
        for ticket in tickets:
            ticket.cancel.set()
        for ticket in tickets:
            ticket.done.wait()
        return len(tickets)
