"""Multi-session RQL server: many clients, one snapshotted store.

Layering (each module only reaches down):

* :mod:`repro.server.store` — :class:`SharedStore`: the shared engine
  pair, the owner-reentrant :class:`WriteGate`, the server-wide
  :class:`~repro.core.parallel.WorkerPool`, per-session facades;
* :mod:`repro.server.registry` — :class:`SessionRegistry`: open/close/
  lookup with reap-on-teardown leak accounting;
* :mod:`repro.server.scheduler` — :class:`QueryScheduler`:
  certificate-gated concurrent retrospective queries with per-ticket
  cancellation;
* :mod:`repro.server.server` — :class:`RQLServer` /
  :class:`ClientHandle`: the in-process multi-client API;
* :mod:`repro.server.wire` — :class:`WireServer` / :class:`WireClient`:
  newline-delimited JSON over localhost TCP
  (``python -m repro.cli serve``).

The load-bearing property — concurrent schedules are byte-equivalent
to their serial replay in commit order, with zero leaked pins, readers
or sessions — is proven by the differential harness in
``tests/server/test_concurrent_equivalence.py``.
"""

from repro.server.registry import SessionRegistry
from repro.server.scheduler import QueryScheduler, QueryTicket
from repro.server.server import ClientHandle, RQLServer
from repro.server.store import GateHandle, SharedStore, WriteGate
from repro.server.wire import WireClient, WireServer

__all__ = [
    "ClientHandle",
    "GateHandle",
    "QueryScheduler",
    "QueryTicket",
    "RQLServer",
    "SessionRegistry",
    "SharedStore",
    "WireClient",
    "WireServer",
    "WriteGate",
]
