"""The shared store behind a multi-session RQL server.

One :class:`SharedStore` owns what the paper's deployment shares across
connections: the snapshotable main engine, the aux engine (temp tables +
SnapIds), a single blocking **write gate** that serializes update
transactions across sessions, and one bounded :class:`WorkerPool` that
every concurrent retrospective query draws its partition workers from.

Sessions are cheap facades: :meth:`SharedStore.open_session` builds a
:class:`~repro.sql.database.Database` over the *shared* engines with a
per-session owner token, so MVCC read contexts are attributable (and
reapable) per session while version chains, the buffer pool, the Retro
structures and the SnapIds table are common property.

Concurrency model (mirrors the storage layer's single-writer /
multi-reader design):

* **updates** — write-classified statements and explicit transactions
  take the :class:`WriteGate`; at most one session mutates the overlay
  at a time, others block until it commits or rolls back;
* **retrospective queries (Qs)** — run over read contexts pinned at
  their begin timestamp; they never take the gate and never block a
  writer, exactly the "queries over snapshots do not interfere with
  updates" property the paper's retrospection design targets.

The gate is **owner-reentrant** rather than thread-reentrant: the
serial-replay half of the differential harness drives several sessions
from one thread, and the registry must be able to force-release the
gate of a session whose client vanished — both impossible with a plain
:class:`threading.RLock`.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.core import RQLSession
from repro.core.parallel import WorkerPool
from repro.errors import ServerError, SessionStateError
from repro.sql.database import Database
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine
from repro.storage.page import DEFAULT_PAGE_SIZE

#: default size of the server-wide partition worker pool
DEFAULT_POOL_WORKERS = 4


class WriteGate:
    """Blocking, owner-reentrant mutex over the shared write overlay.

    ``acquire(owner)`` blocks while a *different* owner holds the gate;
    the same owner may re-enter (``write_lock()`` nests inside
    statement-level holds).  ``force_release(owner)`` unconditionally
    drops an owner's hold — the registry's last resort when reaping a
    session whose client disconnected mid-transaction.
    """

    def __init__(self, timeout: Optional[float] = None) -> None:
        #: deadlock backstop: acquire() raises after this many seconds
        self.timeout = timeout
        self._cond = threading.Condition()
        self._owner: Optional[object] = None
        self._depth = 0

    def acquire(self, owner: object) -> None:
        with self._cond:
            while self._owner is not None and self._owner is not owner:
                if not self._cond.wait(timeout=self.timeout):  # replint: blocking-exempt -- Condition.wait atomically releases the latch while blocked
                    raise ServerError(
                        f"write gate acquire timed out after "
                        f"{self.timeout}s (held by another session)"
                    )
            self._owner = owner
            self._depth += 1

    def release(self, owner: object) -> None:
        with self._cond:
            if self._owner is not owner:
                raise SessionStateError(
                    "write gate released by a session that does not "
                    "hold it"
                )
            self._depth -= 1
            if self._depth == 0:
                self._owner = None
                self._cond.notify_all()

    def force_release(self, owner: object) -> bool:
        """Drop ``owner``'s hold entirely; True if anything was held."""
        with self._cond:
            if self._owner is not owner:
                return False
            self._depth = 0
            self._owner = None
            self._cond.notify_all()
            return True

    @property
    def held(self) -> bool:
        with self._cond:
            return self._owner is not None

    def holder(self) -> Optional[object]:
        with self._cond:
            return self._owner


class GateHandle:
    """Binds one facade's owner token to the shared :class:`WriteGate`.

    The :class:`~repro.sql.database.Database` gate protocol is
    owner-less (``acquire()``/``release()``); this adapter supplies the
    owner so the gate can tell sessions apart.
    """

    __slots__ = ("_gate", "_owner")

    def __init__(self, gate: WriteGate, owner: object) -> None:
        self._gate = gate
        self._owner = owner

    def acquire(self) -> None:
        self._gate.acquire(self._owner)

    def release(self) -> None:
        self._gate.release(self._owner)


class SharedStore:
    """Engines + write gate + worker pool shared by every session."""

    def __init__(self, disk: Optional[SimulatedDisk] = None,
                 aux_disk: Optional[SimulatedDisk] = None,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 pool_workers: int = DEFAULT_POOL_WORKERS,
                 gate_timeout: Optional[float] = None,
                 clock: Optional[Callable[[], str]] = None) -> None:
        self.engine = StorageEngine(disk, page_size=page_size)
        self.aux_engine = StorageEngine(aux_disk, page_size=page_size)
        self.gate = WriteGate(timeout=gate_timeout)
        self.pool = WorkerPool(pool_workers)
        self.clock = clock
        self._latch = threading.RLock()
        self._closed = False
        # Bootstrap both catalogs once, before any session exists, so
        # facade construction never races on the catalog roots.
        Database(engine=self.engine, aux_engine=self.aux_engine).close()

    # -- session factory ----------------------------------------------------

    def open_session(self, name: str,
                     workers: Optional[int] = None) -> RQLSession:
        """A new session facade over the shared engines.

        The facade's owner token doubles as its gate identity, so a
        session's statement-level and ``write_lock()`` holds nest, and
        the registry can reap both its gate hold and its read contexts
        by owner.
        """
        with self._latch:
            if self._closed:
                raise SessionStateError(
                    f"cannot open session {name!r}: store is closed"
                )
        owner = _SessionOwner(name)
        db = Database(engine=self.engine, aux_engine=self.aux_engine,
                      write_gate=GateHandle(self.gate, owner),
                      owner=owner)
        return RQLSession(db=db, clock=self.clock, workers=workers,
                          name=name, pool=self.pool)

    # -- leak introspection -------------------------------------------------

    def open_reader_owners(self) -> List[object]:
        """Owner tokens with live MVCC read contexts, both engines."""
        owners: List[object] = []
        for engine in (self.engine, self.aux_engine):
            owners.extend(
                context.owner for context in engine.open_read_contexts()
            )
        return owners

    def open_reader_count(self) -> int:
        return len(self.open_reader_owners())

    def reap(self, owner: object) -> int:
        """Force-release everything ``owner`` still holds.

        Returns the number of read contexts released; also drops any
        write-gate hold.  Used by the registry after a session close
        failed partway (e.g. a simulated crash during rollback).
        """
        released = self.engine.release_read_contexts(owner)
        released += self.aux_engine.release_read_contexts(owner)
        self.gate.force_release(owner)
        return released

    # -- lifecycle ----------------------------------------------------------

    def checkpoint(self) -> None:
        self.engine.checkpoint()
        self.aux_engine.checkpoint()

    def close(self, checkpoint: bool = True) -> None:
        """Idempotent: drain the pool, optionally checkpoint engines."""
        with self._latch:
            if self._closed:
                return
            self._closed = True
        self.pool.close()
        if checkpoint:
            self.checkpoint()

    @property
    def closed(self) -> bool:
        with self._latch:
            return self._closed


class _SessionOwner:
    """Owner token for one session's gate holds and read contexts."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<session-owner {self.name!r}>"
