"""A thin socket front-end: newline-delimited JSON over localhost TCP.

One TCP connection = one server session.  Requests and responses are
single JSON objects per line::

    -> {"op": "execute", "sql": "SELECT 1"}
    <- {"ok": true, "columns": ["1"], "rows": [[1]]}

    -> {"op": "snapshot", "name": "friday"}
    <- {"ok": true, "snapshot_id": 3}

    -> {"op": "mechanism", "mechanism": "collate_data",
        "qs": "SELECT snap_id FROM SnapIds", "qq": "SELECT ...",
        "table": "Result"}
    <- {"ok": true, "table": "Result", "rows": 42, "snapshots": [...]}

Errors come back as ``{"ok": false, "error": "<class>",
"message": "..."}`` and keep the connection usable.  A vanished peer
(EOF, reset) is an **abrupt disconnect**: the serving thread kills the
session through the scheduler's cancel path, so a client that dies
mid-query leaks nothing.

The wire layer is deliberately minimal — the differential harness and
the fault tests drive the richer in-process API; this exists so
``python -m repro.cli serve`` has something to speak.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError, ServerError

from repro.server.server import ClientHandle, RQLServer


class WireServer:
    """Serves an :class:`RQLServer` over a localhost TCP socket."""

    def __init__(self, server: RQLServer, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._server = server
        self._sock = socket.create_server((host, port))
        self._latch = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        return self._sock.getsockname()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "WireServer":
        """Accept connections on a background thread."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="rql-wire-accept", daemon=True)
        self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, join connection threads (idempotent)."""
        with self._latch:
            if self._closed:
                return
            self._closed = True
        # Closing the listening socket does not reliably unblock a
        # thread sitting in accept(); poke it with a throwaway
        # connection first.
        try:
            with socket.create_connection(self.address, timeout=1.0):
                pass
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join()
        self._sock.close()
        with self._latch:
            threads = list(self._threads)
        for thread in threads:
            thread.join()

    @property
    def closed(self) -> bool:
        with self._latch:
            return self._closed

    def __enter__(self) -> "WireServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- connection handling ------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # socket closed: shutdown
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="rql-wire-conn", daemon=True)
            with self._latch:
                if self._closed:
                    conn.close()
                    return
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        handle: Optional[ClientHandle] = None
        clean = False
        try:
            handle = self._server.connect()
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                response, disconnect = self._dispatch(handle, line)
                if disconnect:
                    # Close the session *before* acknowledging, so a
                    # client that saw the ack never observes its own
                    # session still registered.
                    clean = True
                    handle.close()
                conn.sendall(
                    (json.dumps(response, default=repr) + "\n").encode(
                        "utf-8"))
                if disconnect:
                    return
        except (OSError, ValueError):
            pass  # peer vanished mid-write: treated as abrupt below
        finally:
            if handle is not None and not handle.closed:
                # EOF without a close op = the client vanished; cancel
                # whatever it left running and reap the session.
                if clean:
                    handle.close()
                else:
                    handle.kill()
            conn.close()

    # -- request dispatch ---------------------------------------------------

    def _dispatch(self, handle: ClientHandle,
                  line: str) -> Tuple[Dict[str, Any], bool]:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": "BadRequest",
                    "message": f"not JSON: {exc}"}, False
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "session": handle.name}, False
            if op == "execute":
                result = handle.execute(str(request["sql"]))
                return {"ok": True, "columns": list(result.columns),
                        "rows": [list(r) for r in result.rows]}, False
            if op == "script":
                result = handle.executescript(str(request["sql"]))
                payload: Dict[str, Any] = {"ok": True}
                if result is not None:
                    payload["columns"] = list(result.columns)
                    payload["rows"] = [list(r) for r in result.rows]
                return payload, False
            if op == "snapshot":
                sid = handle.declare_snapshot(name=request.get("name"))
                return {"ok": True, "snapshot_id": sid}, False
            if op == "mechanism":
                result = handle._mechanism(
                    str(request["mechanism"]), str(request["qs"]),
                    str(request["qq"]), str(request["table"]),
                    self._decode_arg(request.get("arg")),
                    bool(request.get("persistent", False)),
                    request.get("workers"), True)
                return {"ok": True, "table": result.table,
                        "rows": result.result_rows,
                        "snapshots": list(result.snapshots)}, False
            if op == "close":
                return {"ok": True, "session": handle.name}, True
            return {"ok": False, "error": "BadRequest",
                    "message": f"unknown op {op!r}"}, False
        except ReproError as exc:
            return {"ok": False, "error": type(exc).__name__,
                    "message": str(exc)}, False
        except KeyError as exc:
            return {"ok": False, "error": "BadRequest",
                    "message": f"missing field {exc}"}, False

    @staticmethod
    def _decode_arg(arg: Any) -> Any:
        """JSON lists of [col, func] pairs come back as lists; the
        aggregate parser wants tuples."""
        if isinstance(arg, list):
            return [tuple(item) if isinstance(item, list) else item
                    for item in arg]
        return arg


class WireClient:
    """A minimal blocking client for :class:`WireServer` (tests + CLI)."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8",
                                           newline="\n")

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._sock.sendall(
            (json.dumps(payload) + "\n").encode("utf-8"))
        line = self._reader.readline()
        if not line:
            raise ServerError("server closed the connection")
        return json.loads(line)

    def execute(self, sql: str) -> Dict[str, Any]:
        return self.request({"op": "execute", "sql": sql})

    def close(self) -> None:
        try:
            self.request({"op": "close"})
        except (OSError, ServerError):
            pass
        self._teardown()

    def drop(self) -> None:
        """Abruptly drop the TCP connection (no close op): simulates a
        client that vanished."""
        self._teardown()

    def _teardown(self) -> None:
        # makefile() holds its own reference to the fd: shut the
        # connection down explicitly so the server sees EOF even while
        # the reader object is alive, then close both.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
