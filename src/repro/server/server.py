"""The in-process multi-client server API.

``RQLServer`` composes the shared store, the session registry and the
query scheduler; ``connect()`` hands out :class:`ClientHandle`\\ s — one
per logical client — that expose the familiar session surface (SQL
passthrough, snapshot declaration, the four mechanisms) routed through
the scheduler.

Two disconnect flavours matter for the fault tests:

* :meth:`ClientHandle.close` — graceful: waits for the client's
  in-flight queries, then deregisters the session;
* :meth:`ClientHandle.kill` — abrupt (a vanished client): cancels the
  in-flight queries through their cancel events, waits for the workers
  to retire, then reaps the session.  Either way the registry's leak
  report reads all-zero afterwards.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.core import RQLSession
from repro.core.mechanisms import RQLResult
from repro.errors import SessionStateError
from repro.sql.executor import ResultSet
from repro.storage.disk import SimulatedDisk
from repro.storage.page import DEFAULT_PAGE_SIZE

from repro.server.registry import SessionRegistry
from repro.server.scheduler import QueryScheduler, QueryTicket
from repro.server.store import DEFAULT_POOL_WORKERS, SharedStore


class RQLServer:
    """One shared store serving many concurrent sessions."""

    def __init__(self, disk: Optional[SimulatedDisk] = None,
                 aux_disk: Optional[SimulatedDisk] = None,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 pool_workers: int = DEFAULT_POOL_WORKERS,
                 gate_timeout: Optional[float] = None,
                 clock: Optional[Callable[[], str]] = None,
                 workers: Optional[int] = None) -> None:
        self.store = SharedStore(disk=disk, aux_disk=aux_disk,
                                 page_size=page_size,
                                 pool_workers=pool_workers,
                                 gate_timeout=gate_timeout,
                                 clock=clock)
        self.registry = SessionRegistry(self.store)
        self.scheduler = QueryScheduler(self.store)
        #: default per-query worker count for connected clients
        self.workers = workers
        self._latch = threading.Lock()
        self._closed = False

    # -- client lifecycle ---------------------------------------------------

    def connect(self, name: Optional[str] = None,
                workers: Optional[int] = None) -> "ClientHandle":
        with self._latch:
            if self._closed:
                raise SessionStateError("server is closed")
        session = self.registry.open(
            name, workers=workers if workers is not None else self.workers)
        return ClientHandle(self, session)

    def disconnect(self, name: str, graceful: bool = True) -> bool:
        """Tear one session down; False if it was not connected."""
        if graceful:
            self.scheduler.drain_session(name)
        else:
            self.scheduler.cancel_session(name, wait=True)
        return self.registry.close(name)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Idempotent full shutdown: queries, sessions, store."""
        with self._latch:
            if self._closed:
                return
            self._closed = True
        self.scheduler.shutdown()
        self.registry.shutdown()
        self.store.close()

    @property
    def closed(self) -> bool:
        with self._latch:
            return self._closed

    def __enter__(self) -> "RQLServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- accounting ---------------------------------------------------------

    def leak_report(self) -> Dict[str, object]:
        """All-zero (and gate idle) when no client holds anything."""
        report = self.registry.leak_report()
        report["active_queries"] = self.scheduler.active_count()
        return report


class ClientHandle:
    """One logical client of an :class:`RQLServer`.

    A handle is a single statement stream: drive it from one thread at
    a time (the mechanisms run on scheduler threads, but ``block=True``
    keeps the illusion of a synchronous connection).
    """

    def __init__(self, server: RQLServer, session: RQLSession) -> None:
        self._server = server
        self.session = session

    @property
    def name(self) -> str:
        assert self.session.name is not None
        return self.session.name

    @property
    def closed(self) -> bool:
        return self.session.closed

    # -- SQL / snapshot passthrough -----------------------------------------

    def execute(self, sql: str) -> ResultSet:
        return self.session.execute(sql)

    def executescript(self, sql: str) -> Optional[ResultSet]:
        return self.session.executescript(sql)

    def declare_snapshot(self, name: Optional[str] = None,
                         timestamp: Optional[str] = None) -> int:
        return self.session.declare_snapshot(name=name, timestamp=timestamp)

    def transaction(self, with_snapshot: bool = False,
                    name: Optional[str] = None,
                    timestamp: Optional[str] = None):
        return self.session.transaction(with_snapshot=with_snapshot,
                                        name=name, timestamp=timestamp)

    # -- mechanisms through the scheduler ------------------------------------

    def collate_data(self, qs: str, qq: str, table: str,
                     persistent: bool = False,
                     workers: Optional[int] = None,
                     block: bool = True):
        return self._mechanism("collate_data", qs, qq, table, None,
                               persistent, workers, block)

    def aggregate_data_in_variable(self, qs: str, qq: str, table: str,
                                   agg_func: str,
                                   persistent: bool = False,
                                   workers: Optional[int] = None,
                                   block: bool = True):
        return self._mechanism("aggregate_data_in_variable", qs, qq,
                               table, agg_func, persistent, workers, block)

    def aggregate_data_in_table(self, qs: str, qq: str, table: str,
                                col_func_pairs,
                                persistent: bool = False,
                                workers: Optional[int] = None,
                                block: bool = True):
        return self._mechanism("aggregate_data_in_table", qs, qq, table,
                               col_func_pairs, persistent, workers, block)

    def collate_data_into_intervals(self, qs: str, qq: str, table: str,
                                    persistent: bool = False,
                                    workers: Optional[int] = None,
                                    block: bool = True):
        return self._mechanism("collate_data_into_intervals", qs, qq,
                               table, None, persistent, workers, block)

    def _mechanism(self, mechanism: str, qs: str, qq: str, table: str,
                   arg: object, persistent: bool,
                   workers: Optional[int], block: bool):
        ticket = self._server.scheduler.submit(
            self.session, mechanism, qs, qq, table, arg=arg,
            persistent=persistent, workers=workers)
        if block:
            return ticket.outcome()
        return ticket

    def wait(self, ticket: QueryTicket) -> RQLResult:
        return ticket.outcome()

    # -- disconnects --------------------------------------------------------

    def close(self) -> bool:
        """Graceful disconnect: drain in-flight queries, then leave."""
        return self._server.disconnect(self.name, graceful=True)

    def kill(self) -> bool:
        """Abrupt disconnect: cancel in-flight queries, then reap."""
        return self._server.disconnect(self.name, graceful=False)

    def __enter__(self) -> "ClientHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
