"""Session registry: open/close/lookup with leak accounting.

Every server-managed session lives here from :meth:`SessionRegistry.open`
until :meth:`SessionRegistry.close`.  The registry's contract is that
**teardown always reaps**: even when a session's own close raises (a
simulated crash mid-rollback, a torn disk), the store-level
:meth:`~repro.server.store.SharedStore.reap` still runs, so no MVCC
reader, gate hold, or registry row outlives its client.  The
differential harness asserts the post-run state — zero registered
sessions, zero open read contexts, an idle write gate — after every
schedule.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.core import RQLSession
from repro.errors import SessionStateError, StorageError

from repro.server.store import SharedStore


class SessionRegistry:
    """Tracks the sessions a :class:`SharedStore` currently serves."""

    def __init__(self, store: SharedStore) -> None:
        self._store = store
        self._latch = threading.RLock()
        self._sessions: Dict[str, RQLSession] = {}
        self._counter = 0
        self._closed = False

    # -- open / lookup ------------------------------------------------------

    def open(self, name: Optional[str] = None,
             workers: Optional[int] = None) -> RQLSession:
        """Open a registered session (auto-named when ``name`` is None)."""
        with self._latch:
            if self._closed:
                raise SessionStateError(
                    "cannot open a session: registry is closed"
                )
            if name is None:
                self._counter += 1
                name = f"session-{self._counter}"
            if name in self._sessions:
                raise SessionStateError(
                    f"session {name!r} is already open"
                )
            session = self._store.open_session(name, workers=workers)
            self._sessions[name] = session
            return session

    def get(self, name: str) -> RQLSession:
        with self._latch:
            session = self._sessions.get(name)
        if session is None:
            raise SessionStateError(f"no open session named {name!r}")
        return session

    def names(self) -> List[str]:
        with self._latch:
            return sorted(self._sessions)

    def count(self) -> int:
        with self._latch:
            return len(self._sessions)

    # -- close / reap -------------------------------------------------------

    def close(self, name: str) -> bool:
        """Close and deregister ``name``; False if it was not open.

        Idempotent from the caller's perspective: the registry row is
        claimed under the latch (pop-as-claim), so two racing closes
        tear the session down exactly once.  A storage-level failure
        inside the session's own close (a :class:`SimulatedCrash`
        surfacing as :class:`StorageError`) does not keep the session
        registered — the in-memory reap below still clears its readers
        and gate hold, and the error propagates after.
        """
        with self._latch:
            session = self._sessions.pop(name, None)
        if session is None:
            return False
        try:
            session.close()
        except StorageError:
            raise
        finally:
            # Belt and braces: even a clean close leaves nothing, but a
            # crashed one must not leak readers or a gate hold.
            self._store.reap(session.db._owner)
        return True

    def close_all(self) -> int:
        """Close every open session; returns how many were closed."""
        closed = 0
        for name in self.names():
            try:
                if self.close(name):
                    closed += 1
            except StorageError:
                # The reap already ran; keep tearing the rest down.
                continue
        return closed

    def shutdown(self) -> int:
        """close_all(), then refuse further opens."""
        with self._latch:
            self._closed = True
        return self.close_all()

    # -- leak accounting ----------------------------------------------------

    def leak_report(self) -> Dict[str, object]:
        """Snapshot of everything still held — all zeros when clean."""
        return {
            "sessions": self.count(),
            "read_contexts": self._store.open_reader_count(),
            "gate_held": self.gate_held,
        }

    @property
    def gate_held(self) -> bool:
        return self._store.gate.held
