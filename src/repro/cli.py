"""Interactive shell (``python -m repro``) — a sqlite3-CLI lookalike
with Retro snapshots and RQL built in.

Supports plain SQL (including ``SELECT AS OF`` and
``COMMIT WITH SNAPSHOT``), the RQL mechanism UDFs, materialized
retrospective views (``CREATE MATERIALIZED VIEW v AS
CollateData('<Qq>')``, ``REFRESH MATERIALIZED VIEW v [FULL]``,
``DROP MATERIALIZED VIEW [IF EXISTS] v``, ``EXPLAIN REFRESH
MATERIALIZED VIEW v``), and dot-commands:

.help                       this text
.tables                     list tables (main + aux/temp)
.schema [table]             show column definitions
.indexes [table]            list indexes
.snapshots                  list declared snapshots (SnapIds)
.snapshot [name]            declare a snapshot now
.views [name]               list materialized views, or one view's
                            refresh plan (EXPLAIN REFRESH)
.checkpoint                 flush everything durably
.stats                      storage / Retro statistics
.workers [n]                show or set the RQL worker count
.rqlint <Mechanism> [arg] <Qq SQL>
                            merge-class certificate for a mechanism
                            call (Qs defaults to all of SnapIds);
                            e.g. .rqlint AggregateDataInVariable sum
                            SELECT COUNT(*) FROM LoggedIn
.chaos                      fault-injection status + last recovery report
.chaos crash N [tear]       schedule a crash at the N-th write from now
.chaos scrub                verify archived pre-state checksums
.quit                       exit

Run with ``--chaos-seed N`` to back the session with fault-injecting
ChaosDisks (deterministic in the seed); ``.chaos crash`` requires it.

``python -m repro.cli serve`` starts the multi-session socket server
instead (newline-delimited JSON over localhost TCP; see
:mod:`repro.server.wire` for the protocol and ``serve --selftest`` for
a one-shot liveness check).
"""

from __future__ import annotations

import sys
import time
from typing import IO, List, Optional

from repro.core import RQLSession
from repro.errors import ReproError
from repro.sql.executor import ResultSet
from repro.sql.types import value_repr


def format_table(result: ResultSet, max_width: int = 40) -> str:
    """Render a ResultSet as an aligned text table."""
    if not result.columns:
        rowcount = getattr(result, "rowcount", None)
        return f"ok ({rowcount} rows affected)" if rowcount else "ok"
    rendered = [
        [_clip(value_repr(v), max_width) for v in row]
        for row in result.rows
    ]
    headers = [str(c) for c in result.columns]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(f"({len(result.rows)} row"
                 f"{'s' if len(result.rows) != 1 else ''})")
    return "\n".join(lines)


def _clip(text: str, max_width: int) -> str:
    return text if len(text) <= max_width else text[:max_width - 1] + "…"


class Shell:
    """Reads statements, dispatches SQL and dot-commands."""

    def __init__(self, session: Optional[RQLSession] = None,
                 out: Optional[IO[str]] = None) -> None:
        self.session = session or RQLSession()
        # Resolve stdout at call time (it may be redirected by then).
        self.out = out if out is not None else sys.stdout
        self.running = True

    # -- I/O ------------------------------------------------------------

    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    # -- main loop ---------------------------------------------------------

    def run(self, stream: IO[str], interactive: bool = False) -> int:
        buffer: List[str] = []
        while self.running:
            if interactive:
                prompt = "rql> " if not buffer else "...> "
                self.out.write(prompt)
                self.out.flush()
            line = stream.readline()
            if not line:
                break
            stripped = line.strip()
            if not buffer and stripped.startswith("."):
                self.dispatch_dot(stripped)
                continue
            if not stripped and not buffer:
                continue
            buffer.append(line)
            if stripped.endswith(";"):
                statement = "".join(buffer)
                buffer = []
                self.execute(statement)
        if buffer:
            self.execute("".join(buffer))
        return 0

    def execute(self, sql: str) -> None:
        sql = sql.strip().rstrip(";").strip()
        if not sql:
            return
        try:
            result = self.session.db.executescript(sql + ";")
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        if result is not None:
            self.write(format_table(result))

    # -- dot commands ------------------------------------------------------

    def dispatch_dot(self, line: str) -> None:
        parts = line.split()
        command, args = parts[0].lower(), parts[1:]
        handler = getattr(self, "cmd_" + command[1:], None)
        if handler is None:
            self.write(f"unknown command {command}; try .help")
            return
        try:
            handler(args)
        except ReproError as exc:
            self.write(f"error: {exc}")

    def cmd_help(self, args: List[str]) -> None:
        self.write(__doc__.split("Supports", 1)[-1]
                   if args else __doc__ or "")

    def cmd_quit(self, args: List[str]) -> None:
        self.running = False

    def cmd_exit(self, args: List[str]) -> None:
        self.running = False

    def _catalogs(self):
        from repro.sql.catalog import Catalog

        for engine, kind in ((self.session.db.engine, "main"),
                             (self.session.db.aux_engine, "temp")):
            ctx = engine.begin_read()
            try:
                source = engine.read_source(ctx)
                yield Catalog(source, engine.pager.get_root("catalog")), kind
            finally:
                ctx.close()

    def cmd_tables(self, args: List[str]) -> None:
        for catalog, kind in self._catalogs():
            for table in catalog.list_tables():
                self.write(f"{table.name}  [{kind}]")

    def cmd_schema(self, args: List[str]) -> None:
        wanted = args[0].lower() if args else None
        for catalog, kind in self._catalogs():
            for table in catalog.list_tables():
                if wanted and table.name.lower() != wanted:
                    continue
                columns = ", ".join(
                    f"{c.name} {c.type_name}".strip()
                    for c in table.columns
                )
                pk = (f", PRIMARY KEY ({', '.join(table.primary_key)})"
                      if table.primary_key else "")
                self.write(f"CREATE TABLE {table.name} ({columns}{pk});"
                           f"  -- [{kind}]")

    def cmd_indexes(self, args: List[str]) -> None:
        wanted = args[0].lower() if args else None
        for catalog, kind in self._catalogs():
            for index in catalog.list_indexes():
                if wanted and index.table.lower() != wanted:
                    continue
                unique = "UNIQUE " if index.unique else ""
                self.write(
                    f"{unique}INDEX {index.name} ON {index.table} "
                    f"({', '.join(index.columns)})  [{kind}]"
                )

    def cmd_snapshots(self, args: List[str]) -> None:
        result = self.session.execute(
            "SELECT snap_id, snap_ts, snap_name FROM SnapIds "
            "ORDER BY snap_id"
        )
        self.write(format_table(result))

    def cmd_snapshot(self, args: List[str]) -> None:
        name = args[0] if args else None
        sid = self.session.declare_snapshot(name=name)
        self.write(f"declared snapshot {sid}"
                   + (f" ({name})" if name else ""))

    def cmd_views(self, args: List[str]) -> None:
        if args:
            for line in self.session.views.explain_refresh(args[0]):
                self.write(line)
            return
        views = self.session.views.list_views()
        if not views:
            self.write("(no materialized views)")
            return
        result = ResultSet(
            ["name", "mechanism", "merge_class", "built_from"],
            [(v.name, v.mechanism, v.merge_class, v.built_from)
             for v in views],
        )
        self.write(format_table(result))

    def cmd_checkpoint(self, args: List[str]) -> None:
        self.session.checkpoint()
        self.write("checkpointed")

    def cmd_workers(self, args: List[str]) -> None:
        if args:
            try:
                count = int(args[0])
            except ValueError:
                self.write(f"error: not a worker count: {args[0]!r}")
                return
            self.session.workers = \
                self.session._validate_workers(count)
        self.write(f"workers: {self.session.workers}")

    def cmd_rqlint(self, args: List[str]) -> None:
        """Certify one mechanism invocation against the live catalog."""
        usage = "usage: .rqlint <Mechanism> [agg-arg] <Qq SQL>"
        if not args:
            self.write(usage)
            return
        mechanism, rest = args[0], list(args[1:])
        arg: object = None
        canonical = mechanism.replace("_", "").lower()
        if canonical in ("aggregatedatainvariable",
                         "aggregatedataintable") \
                and rest and rest[0].upper() != "SELECT":
            text = rest.pop(0)
            if ":" in text:
                arg = [tuple(chunk.split(":", 1))
                       for chunk in text.split(",")]
            else:
                arg = text
        qq = " ".join(rest).rstrip(";")
        if not qq:
            self.write(usage)
            return
        qs = "SELECT snap_id FROM SnapIds ORDER BY snap_id"
        certificate = self.session.certify(mechanism, qs, qq, arg=arg)
        for line in certificate.summary_lines():
            self.write(line)

    def cmd_chaos(self, args: List[str]) -> None:
        engine = self.session.db.engine
        controller = getattr(engine.disk, "chaos", None)
        sub = args[0].lower() if args else "status"
        if sub == "crash":
            if controller is None:
                self.write("error: fault injection needs --chaos-seed")
                return
            if len(args) < 2:
                self.write("usage: .chaos crash N [tear]")
                return
            try:
                ordinal = int(args[1])
            except ValueError:
                self.write(f"error: not a write ordinal: {args[1]!r}")
                return
            tear = len(args) > 2 and args[2].lower() == "tear"
            controller.schedule_crash(at_write=ordinal, tear=tear)
            self.write(f"crash scheduled at write "
                       f"#{controller.crash_at}"
                       + (" (torn)" if tear else ""))
        elif sub == "scrub":
            bad = engine.retro.scrub()
            if bad:
                self.write(f"scrub: {len(bad)} corrupt pre-state(s); "
                           f"affected snapshots marked unavailable")
            else:
                self.write("scrub: all archived pre-states verify")
        elif sub == "status":
            if controller is None:
                self.write("injection:    off (run with --chaos-seed)")
            else:
                armed = (f"crash at write #{controller.crash_at}"
                         + (" torn" if controller.tear else "")
                         if controller.armed else "disarmed")
                self.write(f"injection:    seed {controller.seed}, "
                           f"{armed}")
                self.write(f"writes:       {controller.write_count} "
                           f"durable, {controller.dropped_writes} "
                           f"dropped")
                if controller.last_event:
                    self.write(f"last event:   {controller.last_event}")
            report = engine.last_recovery
            if report is None:
                self.write("recovery:     clean open (nothing replayed)")
            else:
                self.write(f"recovery:     {report.replayed_txns} txn(s) "
                           f"replayed, "
                           f"{'DEGRADED' if report.degraded else 'intact'}")
                for name, status in (("wal", report.wal_status),
                                     ("maplog", report.maplog_status)):
                    if status is not None and status.torn:
                        self.write(
                            f"  {name}: torn tail — "
                            f"{status.truncated_blocks} block(s) "
                            f"truncated, partial record dropped: "
                            f"{status.dropped_partial_record}")
            unavailable = engine.retro.unavailable_snapshots()
            if unavailable:
                self.write(f"unavailable:  snapshots {unavailable}")
        else:
            self.write(f"unknown subcommand {sub!r}; "
                       f"try .chaos / .chaos crash N [tear] / .chaos scrub")

    def cmd_stats(self, args: List[str]) -> None:
        engine = self.session.db.engine
        retro = engine.retro
        self.write(f"database pages:      {engine.database_pages()}")
        self.write(f"declared snapshots:  {retro.latest_snapshot_id}")
        self.write(f"pagelog pre-states:  {retro.pagelog.total_slots} "
                   f"({retro.pagelog.size_bytes} bytes)")
        self.write(f"maplog entries:      {retro.maplog.entries_recorded}")
        cache = retro.cache
        self.write(f"snapshot cache:      {len(cache)} pages, "
                   f"hit rate {cache.hit_rate():.1%}")
        pool = engine.pager.pool.stats
        self.write(f"buffer pool:         hit rate {pool.hit_rate():.1%}")


def serve_main(argv: List[str],
               out: Optional[IO[str]] = None) -> int:
    """``python -m repro.cli serve``: the socket front-end.

    Flags: ``--host H`` (default 127.0.0.1), ``--port N`` (default 0 =
    ephemeral), ``--pool-workers N`` (partition worker pool size),
    ``--workers N`` (default per-query worker count), ``--selftest``
    (spin up, run a smoke round-trip over the wire, shut down — used by
    the test suite and by CI as a liveness check).
    """
    from repro.server import RQLServer, WireClient, WireServer

    stream = out if out is not None else sys.stdout
    host, port = "127.0.0.1", 0
    pool_workers, workers = 4, None
    selftest = False
    flags = {"--host": str, "--port": int, "--pool-workers": int,
             "--workers": int}
    while argv:
        flag = argv.pop(0)
        if flag == "--selftest":
            selftest = True
            continue
        name = flag.split("=", 1)[0]
        if name not in flags:
            print(f"error: unknown serve flag {name}", file=sys.stderr)
            return 2
        if "=" in flag:
            raw = flag.split("=", 1)[1]
        elif argv:
            raw = argv.pop(0)
        else:
            print(f"error: {name} needs a value", file=sys.stderr)
            return 2
        try:
            value = flags[name](raw)
        except ValueError:
            print(f"error: bad value for {name}: {raw!r}",
                  file=sys.stderr)
            return 2
        if name == "--host":
            host = str(value)
        elif name == "--port":
            port = int(value)
        elif name == "--pool-workers":
            pool_workers = int(value)
        else:
            workers = int(value)
    server = RQLServer(pool_workers=pool_workers, workers=workers)
    wire = WireServer(server, host=host, port=port).start()
    bound_host, bound_port = wire.address
    print(f"rql server listening on {bound_host}:{bound_port}",
          file=stream)
    try:
        if selftest:
            with WireClient(bound_host, bound_port) as client:
                client.execute("CREATE TABLE t (a INTEGER)")
                client.execute("INSERT INTO t VALUES (1)")
                client.request({"op": "snapshot", "name": "smoke"})
                reply = client.request({
                    "op": "mechanism", "mechanism": "collate_data",
                    "qs": "SELECT snap_id FROM SnapIds",
                    "qq": "SELECT a, current_snapshot() FROM t",
                    "table": "Result",
                })
            if not reply.get("ok"):
                print(f"selftest failed: {reply}", file=sys.stderr)
                return 1
            print(f"selftest ok: {reply['rows']} row(s) over "
                  f"snapshots {reply['snapshots']}", file=stream)
            return 0
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down", file=stream)
            return 0
    finally:
        wire.close()
        server.close()


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # Static analysis entry point: `python -m repro.cli lint [...]`
        # is equivalent to `python -m repro.analysis [...]`.
        from repro.analysis import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    workers = 1
    chaos_seed: Optional[int] = None
    while argv and (argv[0].startswith("--workers")
                    or argv[0].startswith("--chaos-seed")):
        flag = argv.pop(0)
        name = flag.split("=", 1)[0]
        if "=" in flag:
            value = flag.split("=", 1)[1]
        elif argv:
            value = argv.pop(0)
        else:
            print(f"error: {name} needs a value", file=sys.stderr)
            return 2
        try:
            number = int(value)
        except ValueError:
            print(f"error: not a number: {value!r}", file=sys.stderr)
            return 2
        if name == "--workers":
            if number < 1:
                print("error: --workers must be >= 1", file=sys.stderr)
                return 2
            workers = number
        else:
            chaos_seed = number
    if chaos_seed is not None:
        from repro.sql.database import Database
        from repro.storage.chaosdisk import ChaosDisk

        disk = ChaosDisk(4096, seed=chaos_seed)
        aux_disk = ChaosDisk(4096, controller=disk.chaos)
        session = RQLSession(db=Database(disk=disk, aux_disk=aux_disk),
                             workers=workers)
    else:
        session = RQLSession(workers=workers)
    shell = Shell(session=session)
    if argv:
        for path in argv:
            with open(path, "r", encoding="utf-8") as handle:
                code = shell.run(handle)
                if code:
                    return code
        return 0
    interactive = sys.stdin.isatty()
    if interactive:
        shell.write("RQL shell — retrospective computations over "
                    "snapshot sets (.help for commands)")
    return shell.run(sys.stdin, interactive=interactive)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
