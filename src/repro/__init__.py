"""repro: a full reproduction of "RQL: Retrospective Computations over
Snapshot Sets" (Tsikoudis, Shrira, Cohen — EDBT 2018).

Public API highlights:

* :class:`repro.core.session.RQLSession` — open an application database
  with an integrated Retro snapshot system and run RQL mechanisms.
* :mod:`repro.core.mechanisms` — CollateData, AggregateDataInVariable,
  AggregateDataInTable, CollateDataIntoIntervals.
* :mod:`repro.sql.database` — the SQLite-like engine (``SELECT AS OF``,
  ``COMMIT WITH SNAPSHOT``, UDFs).
* :mod:`repro.workloads` — TPC-H dbgen/refresh and the LoggedIn example.
* :mod:`repro.bench` — the experiment harness regenerating every figure.
"""

__version__ = "1.0.0"
