"""One experiment function per figure of the paper's evaluation.

Scaled experiment design (documented per DESIGN.md §2): the paper runs
TPC-H at SF 1 with snapshot intervals of up to 100; we run a smaller
scale factor with proportionally smaller intervals.  Overwrite cycles
come from the workload *fractions*, so the interval-vs-cycle geometry —
which snapshots are "old", how far the sliding window moved — matches
the paper exactly, in units of overwrite cycles:

* the paper's interval of 50 at cycle 50 (UW30) == our interval equal
  to one UW-cycle;
* the paper's "Slast-50" (one UW30 cycle back) == our "Slast-cycle".

Each function returns a :class:`FigureResult` whose ``series`` carry the
same labels the paper's figures use, plus ``checks`` — the qualitative
claims (who wins, where curves converge) asserted by the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import (
    BENCH_CHARGES,
    QQ_AGG,
    QQ_CPU,
    QQ_INT,
    QQ_IO,
    BenchEnv,
    current_state_query,
    get_env,
    qq_collate,
    ratio_c,
    standalone_snapshot_query,
)
from repro.core.mechanisms import (
    AggregateDataInTableRun,
    CollateDataRun,
)
from repro.retro.metrics import IterationMetrics, MetricsSink
from repro.workloads import UW15, UW30, UW60, UW7_5, UpdateWorkload


@dataclass
class FigureResult:
    """Reproduced data for one paper figure."""

    figure: str
    title: str
    #: label -> list of (x, {metric: value}) points
    series: Dict[str, List[Tuple[object, Dict[str, float]]]]
    notes: List[str] = field(default_factory=list)

    def format_text(self) -> str:
        lines = [f"=== {self.figure}: {self.title} ==="]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for label, points in self.series.items():
            lines.append(f"  [{label}]")
            for x, metrics in points:
                rendered = ", ".join(
                    f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in metrics.items()
                )
                lines.append(f"    x={x}: {rendered}")
        return "\n".join(lines)


# Scaled experiment constants.
INTERVAL = 16          # the paper's 50-snapshot interval, scaled
OLD_START = 1          # oldest snapshots sit at the front of the history


def _history_length(workload: UpdateWorkload, max_span: int) -> int:
    """Snapshots needed so an interval starting at 1 is fully old."""
    return max_span + workload.overwrite_cycle + 4


def _env_fig6(workload: UpdateWorkload) -> BenchEnv:
    # Max span: step-10 series with 6 points spans 51 snapshots.
    return get_env(workload, _history_length(workload, 56))


# ---------------------------------------------------------------------------
# Figure 6 — ratio C vs snapshot interval length (old snapshots)
# ---------------------------------------------------------------------------

FIG6_LENGTHS = (1, 2, 5, 10, 16, 24, 32)
FIG6_STEP10_LENGTHS = (1, 2, 4, 6)


def run_fig6() -> FigureResult:
    series: Dict[str, List[Tuple[object, Dict[str, float]]]] = {}
    for workload in (UW30, UW15):
        env = _env_fig6(workload)
        for step, lengths in ((1, FIG6_LENGTHS),
                              (10, FIG6_STEP10_LENGTHS)):
            label = f"{workload.name}, AggV(Qs_N"
            label += " with step 10" if step == 10 else ""
            label += ", Qq_io, AVG)"
            points = []
            for length in lengths:
                qs = env.qs_interval(OLD_START, length, step=step)
                ratios = ratio_c(
                    env, env.session.aggregate_data_in_variable,
                    qs, QQ_IO, "fig6_result", "avg",
                )
                points.append((length, ratios))
            series[label] = points
    return FigureResult(
        figure="Figure 6",
        title="Ratio C with old snapshots: impact of sharing between "
              "snapshots",
        series=series,
        notes=[
            f"interval lengths scaled from the paper's 0-100 to "
            f"{FIG6_LENGTHS}",
            "c_simulated uses the scaled device model; c_pagelog is the "
            "deterministic I/O-count form",
        ],
    )


def fig6_checks(result: FigureResult) -> None:
    """The paper's qualitative claims for Figure 6."""
    for label, points in result.series.items():
        by_x = {x: m for x, m in points}
        # C is highest for the shortest interval (cold dominates).
        assert by_x[1]["c_pagelog"] >= 0.99, (label, by_x[1])
        longest = points[-1][1]["c_pagelog"]
        assert longest < by_x[1]["c_pagelog"], label
        # For long intervals, C converges: last two lengths close.
        last_two = [m["c_pagelog"] for _, m in points[-2:]]
        assert abs(last_two[0] - last_two[1]) < 0.25, (label, last_two)
    # More sharing -> lower C: UW15 step-1 below UW30 step-1 at the
    # longest interval (UW15 diffs are half the size).
    uw30 = result.series["UW30, AggV(Qs_N, Qq_io, AVG)"][-1][1]
    uw15 = result.series["UW15, AggV(Qs_N, Qq_io, AVG)"][-1][1]
    assert uw15["c_pagelog"] <= uw30["c_pagelog"] * 1.1, (uw15, uw30)
    # Skipping snapshots reduces sharing -> step-10 C above step-1 C.
    for workload in ("UW30", "UW15"):
        step1 = dict(result.series[
            f"{workload}, AggV(Qs_N, Qq_io, AVG)"])
        step10 = dict(result.series[
            f"{workload}, AggV(Qs_N with step 10, Qq_io, AVG)"])
        for length in FIG6_STEP10_LENGTHS[2:]:
            if length in step1:
                assert step10[length]["c_pagelog"] >= \
                    step1[length]["c_pagelog"], (workload, length)


# ---------------------------------------------------------------------------
# Figure 7 — ratio C vs interval start (recent snapshots)
# ---------------------------------------------------------------------------

def run_fig7() -> FigureResult:
    series: Dict[str, List[Tuple[object, Dict[str, float]]]] = {}
    for workload in (UW30, UW15):
        env = _env_fig6(workload)
        cycle = workload.overwrite_cycle
        last = env.last_snapshot
        # Interval starts from one cycle (+margin) back up to the most
        # recent possible; every interval must fit before Slast.
        offsets = sorted(
            {cycle + 20, cycle, (3 * cycle) // 4, cycle // 2,
             max(cycle // 4, INTERVAL), INTERVAL},
            reverse=True,
        )
        label = f"{workload.name}, AggV(Qs_{INTERVAL}, Qq_io, AVG)"
        points = []
        for offset in offsets:
            start = max(1, last - offset)
            qs = env.qs_interval(start, INTERVAL)
            ratios = ratio_c(
                env, env.session.aggregate_data_in_variable,
                qs, QQ_IO, "fig7_result", "avg",
            )
            points.append((f"Slast-{offset}", ratios))
        series[label] = points
    return FigureResult(
        figure="Figure 7",
        title="Ratio C with recent snapshots: impact of sharing with "
              "current state",
        series=series,
        notes=[
            f"interval length {INTERVAL} (paper: 50); offsets expressed "
            f"in snapshots before Slast, spanning one overwrite cycle",
        ],
    )


def fig7_checks(result: FigureResult) -> None:
    for label, points in result.series.items():
        values = [m["all_cold_seconds"] for _, m in points]
        # All-cold cost drops as the interval becomes more recent
        # (sharing with the current state).
        assert values[0] > values[-1], (label, values)
        # Absolute RQL cost also drops for recent intervals.
        rql = [m["rql_seconds"] for _, m in points]
        assert rql[0] > rql[-1], (label, rql)


# ---------------------------------------------------------------------------
# Figure 8 — single-iteration breakdown, cold/hot, old/recent/current
# ---------------------------------------------------------------------------

def _cold_iteration(env: BenchEnv, qq: str, sid: int) -> IterationMetrics:
    return standalone_snapshot_query(env, qq, sid, clear_cache=True)


def _hot_iteration(env: BenchEnv, qq: str, sid: int) -> IterationMetrics:
    """Warm the cache with the preceding snapshot, then measure sid."""
    env.clear_snapshot_cache()
    warm = max(1, sid - 1)
    standalone_snapshot_query(env, qq, warm, clear_cache=False)
    return standalone_snapshot_query(env, qq, sid, clear_cache=False)


def run_fig8() -> FigureResult:
    env = _env_fig6(UW30)
    cycle = UW30.overwrite_cycle
    last = env.last_snapshot
    bars: List[Tuple[str, IterationMetrics]] = [
        ("Old snapshot cold iteration",
         _cold_iteration(env, QQ_IO, OLD_START + 1)),
        ("Old snapshot hot iteration",
         _hot_iteration(env, QQ_IO, OLD_START + 1)),
        (f"Slast-{cycle} cold iteration",
         _cold_iteration(env, QQ_IO, last - cycle)),
        (f"Slast-{cycle} hot iteration",
         _hot_iteration(env, QQ_IO, last - cycle)),
        (f"Slast-{cycle // 2} hot iteration",
         _hot_iteration(env, QQ_IO, last - cycle // 2)),
        ("Slast hot iteration", _hot_iteration(env, QQ_IO, last)),
        ("Current State", current_state_query(env, QQ_IO)),
    ]
    series = {
        label: [("breakdown", _augment(metrics))]
        for label, metrics in bars
    }
    return FigureResult(
        figure="Figure 8",
        title="Single-iteration cost for AggV(Qs, Qq_io, AVG), UW30: "
              "I/O vs SPT build vs query eval vs UDF",
        series=series,
        notes=[f"'Slast-{cycle}' maps the paper's Slast-50 (one UW30 "
               f"overwrite cycle before the last snapshot)"],
    )


def _augment(metrics: IterationMetrics) -> Dict[str, float]:
    out = dict(metrics.breakdown(BENCH_CHARGES))
    out["total"] = metrics.total_seconds(BENCH_CHARGES)
    out["pagelog_reads"] = float(metrics.pagelog_reads)
    out["db_reads"] = float(metrics.db_reads)
    out["cache_hits"] = float(metrics.cache_hits)
    return out


def fig8_checks(result: FigureResult) -> None:
    def bar(label_prefix: str) -> Dict[str, float]:
        for label, points in result.series.items():
            if label.startswith(label_prefix):
                return points[0][1]
        raise AssertionError(f"missing bar {label_prefix}")

    old_cold = bar("Old snapshot cold")
    old_hot = bar("Old snapshot hot")
    slast_hot = bar("Slast hot")
    current = bar("Current State")
    # Cold reads far more from the Pagelog than hot.
    assert old_cold["pagelog_reads"] > 4 * old_hot["pagelog_reads"]
    # Recent snapshots read mostly from the database (shared pages).
    assert slast_hot["pagelog_reads"] < old_cold["pagelog_reads"] / 4
    assert slast_hot["db_reads"] > 0
    # Current state does no snapshot I/O at all.
    assert current["pagelog_reads"] == 0
    # Old cold iteration is the most expensive bar.
    assert old_cold["total"] >= max(
        old_hot["total"], slast_hot["total"], current["total"],
    )


# ---------------------------------------------------------------------------
# Figure 9 — CPU-intensive Qq: covering-index creation dominates
# ---------------------------------------------------------------------------

FIG9_INTERVAL = 6


def _fig9_env(with_native_index: bool) -> BenchEnv:
    indexes = (("lineitem_partkey", "lineitem", "l_partkey"),) \
        if with_native_index else ()
    return get_env(UW30, _history_length(UW30, FIG9_INTERVAL),
                   native_indexes=indexes)


def run_fig9() -> FigureResult:
    series: Dict[str, List[Tuple[object, Dict[str, float]]]] = {}
    for with_index in (False, True):
        env = _fig9_env(with_index)
        qs = env.qs_interval(OLD_START, FIG9_INTERVAL)
        env.clear_snapshot_cache()
        result = env.session.aggregate_data_in_variable(
            qs, QQ_CPU, "fig9_result", "avg",
        )
        iterations = result.metrics.iterations
        cold = _augment(iterations[0])
        hot = _mean_breakdown(iterations[1:])
        suffix = "w/ index" if with_index else "w/o index"
        series[f"cold iteration {suffix}"] = [("breakdown", cold)]
        series[f"hot iteration {suffix}"] = [("breakdown", hot)]
    return FigureResult(
        figure="Figure 9",
        title="Single-iteration cost for AggV(Qs, Qq_cpu, AVG), UW30: "
              "ad-hoc (auto covering index) vs native index",
        series=series,
        notes=["the auto covering index on lineitem(l_partkey) is "
               "rebuilt per iteration when no native index exists"],
    )


def _mean_breakdown(iterations: Sequence[IterationMetrics]) -> Dict[str, float]:
    if not iterations:
        return {}
    out: Dict[str, float] = {}
    for iteration in iterations:
        for key, value in _augment(iteration).items():
            out[key] = out.get(key, 0.0) + value
    return {k: v / len(iterations) for k, v in out.items()}


def fig9_checks(result: FigureResult) -> None:
    cold_wo = result.series["cold iteration w/o index"][0][1]
    hot_wo = result.series["hot iteration w/o index"][0][1]
    cold_w = result.series["cold iteration w/ index"][0][1]
    hot_w = result.series["hot iteration w/ index"][0][1]
    # Without a native index, the per-iteration covering-index build is
    # the dominant CPU cost, and dominates hot iterations outright.
    assert cold_wo["index_creation"] > cold_wo["query_eval"], cold_wo
    assert hot_wo["index_creation"] > hot_wo["query_eval"], hot_wo
    assert hot_wo["index_creation"] > hot_wo["io"], hot_wo
    # With a native index there is no per-iteration index build.
    assert cold_w["index_creation"] == 0.0
    assert hot_w["index_creation"] == 0.0
    # Native-index iterations are cheaper overall.
    assert hot_w["total"] < hot_wo["total"]
    # Unlike Qq_io, the cold-vs-hot gap is modest: I/O is only part of
    # the total (paper: "the cost difference ... is less").
    assert cold_wo["total"] < 4 * hot_wo["total"], (cold_wo, hot_wo)


# ---------------------------------------------------------------------------
# Figure 10 — CollateData UDF cost vs Qq output size
# ---------------------------------------------------------------------------

FIG10_INTERVAL = 10
#: Order-date quantile fractions mapping the paper's output sizes
#: (500 / 100K / 500K / 1.6M rows at SF 1 = ~0.03% / 6.7% / 33% / 100%).
FIG10_FRACTIONS = (0.0005, 0.067, 0.33, 1.0)


def _date_quantile(env: BenchEnv, fraction: float) -> str:
    rows = env.session.execute(
        "SELECT o_orderdate FROM orders ORDER BY o_orderdate"
    ).rows
    index = min(len(rows) - 1, int(fraction * len(rows)))
    if fraction >= 1.0:
        return "1999-12-31"
    return str(rows[index][0])


def run_fig10() -> FigureResult:
    env = _env_fig6(UW30)
    qs = env.qs_interval(OLD_START, FIG10_INTERVAL)
    series: Dict[str, List[Tuple[object, Dict[str, float]]]] = {}
    for fraction in FIG10_FRACTIONS:
        date = _date_quantile(env, fraction)
        env.clear_snapshot_cache()
        result = env.session.collate_data(
            qs, qq_collate(date), "fig10_result",
        )
        iterations = result.metrics.iterations
        rows_per_snapshot = result.result_rows / max(1, result.iterations)
        label = f"~{int(rows_per_snapshot)} records"
        series[f"cold iteration {label}"] = [
            ("breakdown", _augment(iterations[0])),
        ]
        series[f"hot iteration {label}"] = [
            ("breakdown", _mean_breakdown(iterations[1:])),
        ]
    return FigureResult(
        figure="Figure 10",
        title="Single-iteration cost for CollateData(Qs, Qq_collate) "
              "with varying Qq output size, UW30",
        series=series,
        notes=["output sizes are the paper's fractions of the orders "
               "table (0.03%% to 100%%), realized at simulation scale"],
    )


def fig10_checks(result: FigureResult) -> None:
    hot_bars = [(label, points[0][1])
                for label, points in result.series.items()
                if label.startswith("hot")]
    udf = [m["rql_udf"] for _, m in hot_bars]
    # UDF cost grows with output size and dominates at the largest.
    assert udf[-1] > udf[0] * 3, udf
    largest = hot_bars[-1][1]
    assert largest["rql_udf"] > largest["io"], largest
    assert largest["rql_udf"] > largest["query_eval"] * 0.5, largest


# ---------------------------------------------------------------------------
# Figure 11 — CollateData + SQL vs AggregateDataInTable (+memory)
# ---------------------------------------------------------------------------

FIG11_INTERVAL = INTERVAL


def run_fig11() -> FigureResult:
    env = _env_fig6(UW30)
    session = env.session
    qs = env.qs_interval(OLD_START, FIG11_INTERVAL)
    series: Dict[str, List[Tuple[object, Dict[str, float]]]] = {}

    def total_seconds(sink: MetricsSink) -> float:
        return sum(i.total_seconds(BENCH_CHARGES) for i in sink.iterations)

    for n_aggs, (agg_spec, extra_sql) in {
        1: ([("cn", "max")],
            'SELECT o_custkey, MAX(cn) FROM "fig11_coll" '
            "GROUP BY o_custkey"),
        2: ([("cn", "max"), ("av", "max")],
            'SELECT o_custkey, MAX(cn), MAX(av) FROM "fig11_coll" '
            "GROUP BY o_custkey"),
    }.items():
        env.clear_snapshot_cache()
        agg_result = session.aggregate_data_in_table(
            qs, QQ_AGG, "fig11_agg", agg_spec,
        )
        env.clear_snapshot_cache()
        coll_result = session.collate_data(qs, QQ_AGG, "fig11_coll")
        extra_started = time.perf_counter()
        session.execute(extra_sql)
        extra_seconds = time.perf_counter() - extra_started
        series[f"CollateData + agg query ({n_aggs} AggFunc)"] = [(
            "totals", {
                "total_seconds": total_seconds(coll_result.metrics)
                + extra_seconds,
                "extra_agg_seconds": extra_seconds,
                "result_bytes": float(coll_result.result_table_bytes),
                "result_rows": float(coll_result.result_rows),
            },
        )]
        series[f"AggregateDataInTable ({n_aggs} AggFunc)"] = [(
            "totals", {
                "total_seconds": total_seconds(agg_result.metrics),
                "extra_agg_seconds": 0.0,
                "result_bytes": float(agg_result.result_table_bytes
                                      + agg_result.result_index_bytes),
                "result_rows": float(agg_result.result_rows),
            },
        )]
    return FigureResult(
        figure="Figure 11",
        title="Same result via CollateData+SQL vs AggregateDataInTable, "
              "1 and 2 aggregations (total time and memory footprint)",
        series=series,
    )


def fig11_checks(result: FigureResult) -> None:
    coll1 = result.series["CollateData + agg query (1 AggFunc)"][0][1]
    coll2 = result.series["CollateData + agg query (2 AggFunc)"][0][1]
    agg1 = result.series["AggregateDataInTable (1 AggFunc)"][0][1]
    agg2 = result.series["AggregateDataInTable (2 AggFunc)"][0][1]
    # AggT's memory footprint is much smaller (paper: >1GB vs <100MB).
    # The 2-AggFunc variant groups on o_custkey alone, the regime of
    # the paper's setup; CollateData's table instead scales with the
    # snapshot-set size.
    assert agg2["result_bytes"] < coll2["result_bytes"] / 3
    assert agg2["result_rows"] < coll2["result_rows"] / 10
    assert agg1["result_rows"] < coll1["result_rows"]
    # AggT costs at most modest overhead over CollateData (paper: ~6%,
    # we allow a loose factor for Python timing noise).
    assert agg2["total_seconds"] < coll2["total_seconds"] * 2.5
    # An extra aggregation adds no significant overhead.
    assert agg2["total_seconds"] < agg1["total_seconds"] * 1.6


# ---------------------------------------------------------------------------
# Figure 12 — per-iteration CollateData vs AggregateDataInTable
# ---------------------------------------------------------------------------

def run_fig12() -> FigureResult:
    # Aggregating both cn and av makes o_custkey the only grouping
    # column, so Qq records repeatedly hit the same stored group — the
    # paper's regime (1M records per snapshot over ~22K groups).
    env = _env_fig6(UW30)
    qs = env.qs_interval(OLD_START, FIG11_INTERVAL)
    env.clear_snapshot_cache()
    coll = CollateDataRun(env.session.db, QQ_AGG, "fig12_coll")
    env.session.db.execute('DROP TABLE IF EXISTS "fig12_coll"')
    coll_result = coll.run(qs)
    env.clear_snapshot_cache()
    env.session.db.execute('DROP TABLE IF EXISTS "fig12_agg"')
    agg = AggregateDataInTableRun(env.session.db, QQ_AGG, "fig12_agg",
                                  [("cn", "max"), ("av", "max")])
    agg_result = agg.run(qs)
    agg_hot = _mean_breakdown(agg_result.metrics.iterations[1:])
    # Operation counts — the paper's explanation of the cost gap:
    # AggT runs a select (probe) per Qq record PLUS inserts/updates,
    # CollateData only inserts.
    agg_hot["probes"] = float(agg.probes)
    agg_hot["updates_applied"] = float(agg.updates_applied)
    agg_hot["rows_inserted"] = float(agg.rows_inserted)
    coll_hot = _mean_breakdown(coll_result.metrics.iterations[1:])
    coll_hot["rows_inserted"] = float(coll_result.result_rows)
    series = {
        "CollateData cold iteration": [
            ("breakdown", _augment(coll_result.metrics.iterations[0])),
        ],
        "CollateData hot iteration": [("breakdown", coll_hot)],
        "AggregateDataInTable cold iteration": [
            ("breakdown", _augment(agg_result.metrics.iterations[0])),
        ],
        "AggregateDataInTable hot iteration": [("breakdown", agg_hot)],
    }
    return FigureResult(
        figure="Figure 12",
        title="Single-iteration cost: CollateData vs "
              "AggregateDataInTable on Qq_agg, UW30",
        series=series,
        notes=["AggT's cold iteration includes result-index creation; "
               "its hot iterations probe the index per Qq record"],
    )


def fig12_checks(result: FigureResult) -> None:
    coll_cold = result.series["CollateData cold iteration"][0][1]
    coll_hot = result.series["CollateData hot iteration"][0][1]
    agg_cold = result.series["AggregateDataInTable cold iteration"][0][1]
    agg_hot = result.series["AggregateDataInTable hot iteration"][0][1]
    # Cold: AggT pays for result-index creation + indexed inserts.
    assert agg_cold["rql_udf"] > coll_cold["rql_udf"]
    # Hot: AggT performs strictly more operations — one index probe per
    # Qq record PLUS its inserts/updates, vs CollateData's inserts only
    # (the paper's "1M select operations ... and a number of inserts or
    # updates" vs "1M insert operations").  Operation counts are the
    # deterministic form of the claim; the timing assertion is tolerant
    # because a pure-Python probe is relatively cheaper than SQLite's.
    agg_ops = (agg_hot["probes"] + agg_hot["updates_applied"]
               + agg_hot["rows_inserted"])
    assert agg_ops > coll_hot["rows_inserted"], (agg_hot, coll_hot)
    assert agg_hot["probes"] > 0 and agg_hot["updates_applied"] > 0
    # No hot-timing assertion: in this substrate a probe+update of the
    # small result table is cheaper than an insert into CollateData's
    # ever-growing one, inverting the paper's per-operation balance.
    # Recorded as a documented deviation in EXPERIMENTS.md.


# ---------------------------------------------------------------------------
# Figure 13 — aggregate-function sensitivity (MAX vs SUM)
# ---------------------------------------------------------------------------

def run_fig13() -> FigureResult:
    env = _env_fig6(UW30)
    qs = env.qs_interval(OLD_START, FIG11_INTERVAL)
    series: Dict[str, List[Tuple[object, Dict[str, float]]]] = {}
    for func in ("max", "sum"):
        env.clear_snapshot_cache()
        env.session.db.execute(f'DROP TABLE IF EXISTS "fig13_{func}"')
        run = AggregateDataInTableRun(
            env.session.db, QQ_AGG, f"fig13_{func}", [("cn", func)],
        )
        result = run.run(qs)
        label = f"{func.upper()} aggregation"
        cold = _augment(result.metrics.iterations[0])
        hot = _mean_breakdown(result.metrics.iterations[1:])
        hot["updates_applied"] = float(run.updates_applied)
        hot["probes"] = float(run.probes)
        hot["rows_inserted"] = float(run.rows_inserted)
        series[f"cold iteration {label}"] = [("breakdown", cold)]
        series[f"hot iteration {label}"] = [("breakdown", hot)]
    return FigureResult(
        figure="Figure 13",
        title="AggregateDataInTable: MAX vs SUM aggregate function "
              "(hot iterations of SUM update per record)",
        series=series,
    )


def fig13_checks(result: FigureResult) -> None:
    max_hot = result.series["hot iteration MAX aggregation"][0][1]
    sum_hot = result.series["hot iteration SUM aggregation"][0][1]
    max_cold = result.series["cold iteration MAX aggregation"][0][1]
    sum_cold = result.series["cold iteration SUM aggregation"][0][1]
    # Same probes, far more updates for SUM (paper: 1M vs 22K).
    assert sum_hot["probes"] == max_hot["probes"]
    assert sum_hot["updates_applied"] > 3 * max_hot["updates_applied"]
    # Hence SUM's hot iterations cost more UDF time.
    assert sum_hot["rql_udf"] > max_hot["rql_udf"]
    # Cold iterations do the same work (insert + index build).
    ratio = sum_cold["rql_udf"] / max_cold["rql_udf"]
    assert 0.5 < ratio < 2.0, ratio


# ---------------------------------------------------------------------------
# Section 5.3 — memory costs: CollateData vs CollateDataIntoIntervals
# ---------------------------------------------------------------------------

SEC53_INTERVAL = INTERVAL
SEC53_WORKLOADS = (UW7_5, UW15, UW30, UW60)


def run_sec53() -> FigureResult:
    series: Dict[str, List[Tuple[object, Dict[str, float]]]] = {}
    for workload in SEC53_WORKLOADS:
        env = get_env(workload, SEC53_INTERVAL + 4)
        qs = env.qs_interval(1, SEC53_INTERVAL)
        env.clear_snapshot_cache()
        coll = env.session.collate_data(qs, QQ_INT, "sec53_coll")
        env.clear_snapshot_cache()
        intervals = env.session.collate_data_into_intervals(
            qs, QQ_INT, "sec53_ivl",
        )
        series[workload.name] = [(
            "memory", {
                "collate_rows": float(coll.result_rows),
                "collate_bytes": float(coll.result_table_bytes),
                "interval_rows": float(intervals.result_rows),
                "interval_bytes": float(intervals.result_table_bytes),
                "interval_index_bytes": float(
                    intervals.result_index_bytes),
                "index_overhead_pct": 100.0
                * intervals.result_index_bytes
                / max(1, intervals.result_table_bytes),
            },
        )]
    return FigureResult(
        figure="Section 5.3",
        title="Result-table memory: CollateData vs "
              "CollateDataIntoIntervals under UW7.5/15/30/60",
        series=series,
        notes=["paper: 75M collate rows (3GB) vs 1.86M-4.4M interval "
               "rows (89-204MB) + ~50% index overhead"],
    )


def sec53_checks(result: FigureResult) -> None:
    rows = {label: points[0][1]
            for label, points in result.series.items()}
    for label, metrics in rows.items():
        # Intervals are always (much) smaller than the raw collation.
        assert metrics["interval_rows"] < metrics["collate_rows"] / 2, label
        assert metrics["interval_bytes"] < metrics["collate_bytes"], label
    # Interval result grows with update volume, sub-proportionally.
    r = [rows[w.name]["interval_rows"] for w in SEC53_WORKLOADS]
    assert r[0] < r[1] < r[2] < r[3], r
    # 8x more updates (UW7.5 -> UW60) must NOT mean 8x more rows.
    assert r[3] < 8 * r[0], r
    # CollateData's size is workload-independent (same Qq output).
    c = [rows[w.name]["collate_rows"] for w in SEC53_WORKLOADS]
    assert max(c) - min(c) <= 0.02 * max(c), c
