"""Benchmark harness: environments, queries, and cost accounting.

Reproduces the paper's Section 5 methodology:

* TPC-H database + snapshot histories built by the refresh workloads
  (environments are cached per configuration — histories are immutable
  once built, and RQL queries never mutate application data);
* the snapshot page cache is cleared before every RQL query ("we assume
  the snapshot page cache is empty at the start of an RQL query");
* ``all_cold_cost`` measures the paper's all-cold baseline: a
  stand-alone snapshot query per snapshot with the cache cleared each
  time, so every iteration pays cold-iteration I/O;
* ratio C = (RQL query cost) / (all-cold cost), reported both in
  simulated seconds and in raw Pagelog-read counts (the deterministic
  form of the same quantity).

Cost model: the per-page Pagelog charge is scaled up relative to the
paper's SSD so that the I/O-to-CPU ratio of a cold Qq_io iteration
matches the paper's Figure 8 (pure-Python query evaluation is ~50x
slower than SQLite's C, so the simulated device is slowed by a similar
factor).  Shapes — who wins, crossovers, convergence — are invariant to
this constant; see EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core import RQLSession
from repro.core.mechanisms import RQLResult
from repro.core.rewrite import rewrite_qq
from repro.retro.metrics import IoCharges, IterationMetrics, MetricsSink
from repro.workloads import SnapshotHistoryBuilder, UpdateWorkload

#: Paper Table 1, reproduced verbatim (queries are used as written; the
#: update workloads are realized at the configured scale factor).
PAPER_PARAMETERS: Dict[str, str] = {
    "UW15": "Delete and insert 15K orders and their lineitem records "
            "per snapshot (1% of orders; overwrite cycle ~100)",
    "UW30": "Delete and insert 30K orders and their lineitem records "
            "per snapshot (2% of orders; overwrite cycle ~50)",
    "Qs_N": "Query that determines the snapshot interval length N",
    "Qq_io": "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'",
    "Qq_cpu": "SELECT SUM(l_extendedprice) AS revenue FROM lineitem, "
              "part WHERE p_partkey = l_partkey and p_type = "
              "'STANDARD POLISHED TIN'",
    "Qq_collate": "SELECT o_orderkey FROM orders WHERE o_orderdate "
                  "< '[DATE]'",
    "Qq_agg": "SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av "
              "FROM orders GROUP BY o_custkey",
    "Qq_int": "SELECT o_orderkey, o_custkey FROM orders",
}

QQ_IO = "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'"
QQ_CPU = ("SELECT SUM(l_extendedprice) AS revenue FROM lineitem, part "
          "WHERE p_partkey = l_partkey AND p_type = "
          "'STANDARD POLISHED TIN'")
QQ_AGG = ("SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av "
          "FROM orders GROUP BY o_custkey")
QQ_INT = "SELECT o_orderkey, o_custkey FROM orders"


def qq_collate(date: str) -> str:
    return f"SELECT o_orderkey FROM orders WHERE o_orderdate < '{date}'"


#: Scaled device model (see module docstring + EXPERIMENTS.md).
BENCH_CHARGES = IoCharges(
    pagelog_read_seconds=1e-3,
    db_read_seconds=5e-6,
    spt_entry_seconds=2e-6,
    cache_hit_seconds=2e-6,
)

#: Default simulation scale factor; override with REPRO_BENCH_SCALE.
DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.001"))


@dataclass
class BenchEnv:
    """One loaded TPC-H database + snapshot history."""

    session: RQLSession
    builder: SnapshotHistoryBuilder
    workload: UpdateWorkload
    snapshot_ids: List[int]
    native_indexes: Tuple[str, ...] = ()

    @property
    def last_snapshot(self) -> int:
        return self.snapshot_ids[-1]

    def clear_snapshot_cache(self) -> None:
        self.session.db.engine.retro.cache.clear()

    def qs_interval(self, first: int, length: int, step: int = 1) -> str:
        """Qs selecting `length` snapshots from `first`, strided."""
        last = first + (length - 1) * step
        predicate = f"snap_id BETWEEN {first} AND {last}"
        if step > 1:
            predicate += f" AND (snap_id - {first}) % {step} = 0"
        return (f"SELECT snap_id FROM SnapIds WHERE {predicate} "
                f"ORDER BY snap_id")


_ENV_CACHE: Dict[tuple, BenchEnv] = {}


def get_env(workload: UpdateWorkload, snapshots: int,
            scale_factor: float = DEFAULT_SCALE, seed: int = 7,
            native_indexes: Sequence[Tuple[str, str, str]] = ()) -> BenchEnv:
    """Build (or reuse) a snapshot-history environment.

    ``native_indexes`` are (name, table, column) triples created BEFORE
    the history, so every snapshot captures them (Figure 9's "native
    index" configuration).
    """
    key = (workload.name, snapshots, scale_factor, seed,
           tuple(native_indexes))
    env = _ENV_CACHE.get(key)
    if env is not None:
        return env
    session = RQLSession()
    builder = SnapshotHistoryBuilder(session, scale_factor=scale_factor,
                                     seed=seed)
    builder.load_initial()
    for name, table, column in native_indexes:
        session.execute(f"CREATE INDEX {name} ON {table} ({column})")
    session.db.checkpoint()
    ids = builder.build_history(workload, snapshots)
    env = BenchEnv(
        session=session, builder=builder, workload=workload,
        snapshot_ids=ids,
        native_indexes=tuple(n for n, _, _ in native_indexes),
    )
    _ENV_CACHE[key] = env
    return env


def clear_env_cache() -> None:
    _ENV_CACHE.clear()


# ---------------------------------------------------------------------------
# Cost extraction
# ---------------------------------------------------------------------------

@dataclass
class CostSummary:
    """One run's cost in both accounting schemes."""

    simulated_seconds: float
    pagelog_reads: int
    cache_hits: int
    db_reads: int
    iterations: int
    breakdown: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_sink(cls, sink: MetricsSink,
                  charges: IoCharges = BENCH_CHARGES) -> "CostSummary":
        breakdown: Dict[str, float] = {}
        for iteration in sink.iterations:
            for part, seconds in iteration.breakdown(charges).items():
                breakdown[part] = breakdown.get(part, 0.0) + seconds
        return cls(
            simulated_seconds=sum(
                it.total_seconds(charges) for it in sink.iterations
            ),
            pagelog_reads=sink.total_pagelog_reads(),
            cache_hits=sum(it.cache_hits for it in sink.iterations),
            db_reads=sum(it.db_reads for it in sink.iterations),
            iterations=len(sink.iterations),
            breakdown=breakdown,
        )


def iteration_breakdown(metrics: IterationMetrics,
                        charges: IoCharges = BENCH_CHARGES) -> Dict[str, float]:
    return metrics.breakdown(charges)


def run_rql(env: BenchEnv, mechanism: Callable[..., RQLResult],
            qs: str, qq: str, table: str, *args,
            clear_cache: bool = True, **kwargs) -> RQLResult:
    """Run one RQL query under the paper's cache methodology."""
    if clear_cache:
        env.clear_snapshot_cache()
    return mechanism(qs, qq, table, *args, **kwargs)


def run_parallel(env: BenchEnv, mechanism: str, qs: str, qq: str,
                 table: str, *args, workers: int = 4,
                 clear_cache: bool = True, **kwargs) -> RQLResult:
    """Run one session mechanism with the parallel executor.

    ``mechanism`` names an :class:`~repro.core.RQLSession` method
    (e.g. ``"aggregate_data_in_variable"``); the returned result carries
    a :class:`~repro.core.parallel.ParallelRunInfo` on ``.parallel``.
    """
    if clear_cache:
        env.clear_snapshot_cache()
    method = getattr(env.session, mechanism)
    return method(qs, qq, table, *args, workers=workers, **kwargs)


def parallel_makespan_seconds(info, charges: IoCharges = BENCH_CHARGES,
                              ) -> float:
    """Simulated wall-clock of a parallel run under ``charges``.

    Workers run concurrently, so the evaluation phase costs as much as
    the slowest partition; the merge phase is serial and is added on
    top.  (Measured thread wall-clock would be meaningless under the
    GIL — the simulated cost model is the deterministic equivalent, the
    same accounting the serial benchmarks use.)
    """
    per_worker = [
        sum(it.total_seconds(charges) for it in sink.iterations)
        for sink in info.worker_sinks
    ]
    return max(per_worker, default=0.0) + info.merge_seconds


def standalone_snapshot_query(env: BenchEnv, qq: str,
                              snapshot_id: int,
                              clear_cache: bool = True) -> IterationMetrics:
    """One stand-alone snapshot query with its own metrics."""
    session = env.session
    sink = MetricsSink(BENCH_CHARGES)
    previous = session.db.metrics
    session.db.attach_metrics(sink)
    try:
        if clear_cache:
            env.clear_snapshot_cache()
        sink.begin_iteration(snapshot_id)
        session.execute(rewrite_qq(qq, snapshot_id))
        sink.end_iteration()
    finally:
        session.db.attach_metrics(previous)
    return sink.iterations[0]


def current_state_query(env: BenchEnv, qq: str) -> IterationMetrics:
    """The same Qq on the current database (Figure 8's last bar)."""
    session = env.session
    sink = MetricsSink(BENCH_CHARGES)
    previous = session.db.metrics
    session.db.attach_metrics(sink)
    try:
        sink.begin_iteration(0)
        session.execute(qq.rstrip(";"))
        sink.end_iteration()
    finally:
        session.db.attach_metrics(previous)
    return sink.iterations[0]


def all_cold_cost(env: BenchEnv, qq: str,
                  snapshot_ids: Sequence[int]) -> CostSummary:
    """The paper's all-cold baseline: every iteration pays cold I/O."""
    sink = MetricsSink(BENCH_CHARGES)
    for snapshot_id in snapshot_ids:
        iteration = standalone_snapshot_query(env, qq, snapshot_id,
                                              clear_cache=True)
        sink.iterations.append(iteration)
    return CostSummary.from_sink(sink)


def qs_snapshot_ids(env: BenchEnv, qs: str) -> List[int]:
    return [int(r[0]) for r in env.session.execute(qs).rows]


def ratio_c(env: BenchEnv, mechanism: Callable[..., RQLResult],
            qs: str, qq: str, table: str, *args) -> Dict[str, float]:
    """Ratio C for one (Qs, Qq) pair: measured RQL cost / all-cold cost.

    Returns both the simulated-latency ratio and the deterministic
    Pagelog-read-count ratio.
    """
    snapshot_ids = qs_snapshot_ids(env, qs)
    result = run_rql(env, mechanism, qs, qq, table, *args)
    rql = CostSummary.from_sink(result.metrics)
    # Force bench charges for the RQL sink (mechanisms default IoCharges).
    rql_seconds = sum(
        it.total_seconds(BENCH_CHARGES) for it in result.metrics.iterations
    )
    cold = all_cold_cost(env, qq, snapshot_ids)
    return {
        "c_simulated": rql_seconds / cold.simulated_seconds
        if cold.simulated_seconds else float("nan"),
        "c_pagelog": rql.pagelog_reads / cold.pagelog_reads
        if cold.pagelog_reads else float("nan"),
        "rql_seconds": rql_seconds,
        "all_cold_seconds": cold.simulated_seconds,
        "rql_pagelog_reads": float(rql.pagelog_reads),
        "all_cold_pagelog_reads": float(cold.pagelog_reads),
        "iterations": float(len(snapshot_ids)),
    }


def recovery_time_summary(seed: int = 0, tear: bool = False,
                          crash_points: Sequence[int] = None,
                          ) -> Dict[str, float]:
    """Recovery-cost metric: what a crash costs to come back from.

    Runs the chaos crash-point sweep (see :mod:`repro.chaos`) and
    reduces it to the durability numbers the bench report tracks: mean
    and total wall-clock seconds spent inside recovery (``Database``
    reopen after a simulated power loss) and the simulated device
    seconds the recovery I/O was charged.  Every crash point is also
    oracle-verified, so the metric cannot be "fast because wrong".
    """
    from repro.chaos import run_crash_sweep

    result = run_crash_sweep(seed=seed, tear=tear,
                             crash_points=crash_points)
    points = result.crash_points or 1
    return {
        "crash_points": float(result.crash_points),
        "verified": float(result.verified),
        "mean_recovery_wall_seconds": result.mean_recovery_wall_seconds,
        "total_recovery_wall_seconds": result.recovery_wall_seconds,
        "mean_recovery_sim_seconds": result.recovery_sim_seconds / points,
        "total_recovery_sim_seconds": result.recovery_sim_seconds,
    }
