"""Result persistence + pretty-printing for the benchmark suite.

Every figure bench writes its reproduced series to
``benchmarks/results/<figure>.txt`` so a run leaves a complete,
diffable record mirroring the paper's evaluation section (the same data
is summarized in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.bench.figures import FigureResult

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results")


def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_figure(result: FigureResult,
                directory: Optional[str] = None) -> str:
    """Write the figure's series to a text file; returns the path."""
    directory = directory or results_dir()
    os.makedirs(directory, exist_ok=True)
    slug = (result.figure.lower().replace(" ", "_")
            .replace(".", "_"))
    path = os.path.join(directory, f"{slug}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.format_text())
        handle.write("\n")
    return path


def print_figure(result: FigureResult) -> None:
    print()
    print(result.format_text())
