"""Physical access paths and DML execution.

:class:`TableAccess` / :class:`IndexAccess` bind catalog objects to a
page source (current state, transaction workspace, or a Retro snapshot —
the same code path serves all three, which is the heart of retrospection:
a query running ``AS OF`` a snapshot executes byte-for-byte the same
access code, only the page fetches resolve differently).

Row storage: table B+tree keyed by ``encode_key((rowid,))`` with the row
record as payload; index B+trees keyed by
``encode_key((*column_values, rowid))`` with the rowid record as payload.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.sql.catalog import IndexInfo, TableInfo
from repro.sql.types import SqlValue, coerce_for_column
from repro.storage.btree import BTree
from repro.storage.record import (
    KEY_AFTER_NULLS,
    decode_record,
    encode_key,
    encode_record,
)

Row = Tuple[SqlValue, ...]


class TableAccess:
    """Read/write access to one table through a page source."""

    def __init__(self, info: TableInfo, source) -> None:
        self.info = info
        self.tree = BTree(source, info.root_id)

    # -- reads -----------------------------------------------------------

    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Yield (rowid, row) in rowid order."""
        for key, value in self.tree.scan_all():
            yield decode_record_key_rowid(key), decode_record(value)

    def scan_rows(self) -> Iterator[Row]:
        for _, value in self.tree.scan_all():
            yield decode_record(value)

    def get(self, rowid: int) -> Optional[Row]:
        raw = self.tree.get(encode_key((rowid,)))
        return decode_record(raw) if raw is not None else None

    def count(self) -> int:
        return self.tree.count()

    # -- writes (index maintenance is the writer's job, see TableWriter) --------

    def next_rowid(self) -> int:
        last = self.tree.last_key()
        if last is None:
            return 1
        return int(decode_record_key_rowid(last)) + 1

    def insert_raw(self, rowid: int, row: Row) -> None:
        self.tree.insert(encode_key((rowid,)), encode_record(row))

    def delete_raw(self, rowid: int) -> bool:
        return self.tree.delete(encode_key((rowid,)))


def decode_record_key_rowid(key: bytes) -> int:
    """Extract the rowid from a table key (single-int encoded key)."""
    from repro.storage.record import decode_key

    (rowid,) = decode_key(key)
    return int(rowid)


class IndexAccess:
    """Read/write access to one secondary index."""

    def __init__(self, info: IndexInfo, source) -> None:
        self.info = info
        self.tree = BTree(source, info.root_id)

    @staticmethod
    def key_for(values: Sequence[SqlValue], rowid: int) -> bytes:
        return encode_key(tuple(values) + (rowid,))

    # -- reads -----------------------------------------------------------

    def lookup_equal(self, values: Sequence[SqlValue]) -> Iterator[int]:
        """Rowids whose indexed columns equal ``values`` (a full prefix)."""
        prefix = encode_key(tuple(values))
        for _, payload in self.tree.scan_prefix(prefix):
            (rowid,) = decode_record(payload)
            yield int(rowid)

    def lookup_range(self, lo: Optional[Sequence[SqlValue]],
                     hi: Optional[Sequence[SqlValue]],
                     lo_inclusive: bool = True,
                     hi_inclusive: bool = True) -> Iterator[int]:
        """Rowids with lo <=/< first column(s) <=/< hi.

        NULL keys satisfy no range predicate (three-valued logic), so
        an unbounded-below range starts after the NULL key class
        instead of at the front of the index.
        """
        lo_key = encode_key(tuple(lo)) if lo is not None \
            else KEY_AFTER_NULLS
        hi_key = encode_key(tuple(hi)) if hi is not None else None
        for key, payload in self.tree.scan_range(lo_key, hi_key,
                                                 hi_inclusive=hi_inclusive):
            if not lo_inclusive and lo_key is not None and \
                    key.startswith(lo_key):
                continue
            (rowid,) = decode_record(payload)
            yield int(rowid)

    def scan_all(self) -> Iterator[int]:
        for _, payload in self.tree.scan_all():
            (rowid,) = decode_record(payload)
            yield int(rowid)

    # -- writes ------------------------------------------------------------

    def insert_entry(self, values: Sequence[SqlValue], rowid: int) -> None:
        self.tree.insert(self.key_for(values, rowid),
                         encode_record((rowid,)))

    def delete_entry(self, values: Sequence[SqlValue], rowid: int) -> bool:
        return self.tree.delete(self.key_for(values, rowid))

    def has_prefix(self, values: Sequence[SqlValue]) -> bool:
        prefix = encode_key(tuple(values))
        for _ in self.tree.scan_prefix(prefix):
            return True
        return False


class TableWriter:
    """Insert/delete/update with index maintenance and PK enforcement."""

    def __init__(self, table: TableAccess, indexes: List[IndexAccess]) -> None:
        self.table = table
        self.indexes = indexes
        self._pk_index = next(
            (ix for ix in indexes if ix.info.unique), None,
        )
        # next_rowid() descends the tree; cache it across inserts (the
        # writer is the only mutator of this table for its lifetime).
        self._next_rowid: Optional[int] = None

    def _index_values(self, index: IndexAccess, row: Row) -> List[SqlValue]:
        info = self.table.info
        return [row[info.column_index(c)] for c in index.info.columns]

    def insert(self, row: Sequence[SqlValue]) -> int:
        info = self.table.info
        if len(row) != len(info.columns):
            raise ExecutionError(
                f"table {info.name} has {len(info.columns)} columns but "
                f"{len(row)} values were supplied"
            )
        coerced = tuple(
            coerce_for_column(v, c.type_name)
            for v, c in zip(row, info.columns)
        )
        for index in self.indexes:
            if index.info.unique:
                values = self._index_values(index, coerced)
                if index.has_prefix(values):
                    raise ExecutionError(
                        f"UNIQUE constraint failed: {info.name}"
                        f"({', '.join(index.info.columns)})"
                    )
        if self._next_rowid is None:
            self._next_rowid = self.table.next_rowid()
        rowid = self._next_rowid
        self._next_rowid += 1
        self.table.insert_raw(rowid, coerced)
        for index in self.indexes:
            index.insert_entry(self._index_values(index, coerced), rowid)
        return rowid

    def delete(self, rowid: int) -> bool:
        row = self.table.get(rowid)
        if row is None:
            return False
        self.table.delete_raw(rowid)
        for index in self.indexes:
            index.delete_entry(self._index_values(index, row), rowid)
        return True

    def update(self, rowid: int, new_row: Sequence[SqlValue]) -> None:
        info = self.table.info
        old_row = self.table.get(rowid)
        if old_row is None:
            raise ExecutionError(f"rowid {rowid} vanished during UPDATE")
        coerced = tuple(
            coerce_for_column(v, c.type_name)
            for v, c in zip(new_row, info.columns)
        )
        for index in self.indexes:
            old_vals = self._index_values(index, old_row)
            new_vals = self._index_values(index, coerced)
            if old_vals != new_vals and index.info.unique and \
                    index.has_prefix(new_vals):
                raise ExecutionError(
                    f"UNIQUE constraint failed: {info.name}"
                    f"({', '.join(index.info.columns)})"
                )
        self.table.insert_raw(rowid, coerced)
        for index in self.indexes:
            old_vals = self._index_values(index, old_row)
            new_vals = self._index_values(index, coerced)
            if old_vals != new_vals:
                index.delete_entry(old_vals, rowid)
                index.insert_entry(new_vals, rowid)


class EphemeralPageSource:
    """In-memory page source for statement-lifetime structures.

    Used for SQLite-style automatic covering indexes: the planner builds
    a real B+tree (real page serialization costs — that is what makes
    index creation dominate Figure 9) that vanishes with the statement.
    """

    def __init__(self, page_size: int = 4096) -> None:
        self._page_size = page_size
        self._pages: Dict[int, "object"] = {}
        self._next_id = 1

    def fetch(self, page_id: int):
        return self._pages[page_id]

    def release(self, page) -> None:
        pass

    def allocate_page(self):
        from repro.storage.page import Page

        page = Page(self._next_id, page_size=self._page_size)
        self._pages[self._next_id] = page
        self._next_id += 1
        return page

    def free_page(self, page_id: int) -> None:
        self._pages.pop(page_id, None)

    def mark_dirty(self, page) -> None:
        pass

    def make_writable(self, page):
        return page


class EphemeralIndex:
    """An automatic covering index over one column of a row stream."""

    def __init__(self, page_size: int = 4096) -> None:
        from repro.storage.btree import BTree

        self._source = EphemeralPageSource(page_size)
        self._tree = BTree.create(self._source)
        self._sequence = 0

    def add(self, key_value: SqlValue, row: Row) -> None:
        if key_value is None:
            return
        self._sequence += 1
        self._tree.insert(encode_key((key_value, self._sequence)),
                          encode_record(row))

    def lookup(self, key_value: SqlValue) -> Iterator[Row]:
        if key_value is None:
            return
        prefix = encode_key((key_value,))
        for _, payload in self._tree.scan_prefix(prefix):
            yield decode_record(payload)


class ResultSet:
    """Materialized query result: column names + row tuples."""

    def __init__(self, columns: List[str], rows: List[Row]) -> None:
        self.columns = columns
        self.rows = rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> SqlValue:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns"
            )
        return self.rows[0][0]

    def first(self) -> Optional[Row]:
        return self.rows[0] if self.rows else None

    def column(self, name: str) -> List[SqlValue]:
        lowered = name.lower()
        for i, col in enumerate(self.columns):
            if col.lower() == lowered:
                return [row[i] for row in self.rows]
        raise ExecutionError(f"no such result column: {name}")

    def to_dicts(self) -> List[Dict[str, SqlValue]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"
