"""Semantic analysis over parsed SELECTs (the front half of rqlint).

The planner resolves names lazily, one expression at a time, while it
executes.  rqlint needs the same information *statically*: which tables
and columns a query reads, what type each output has, which select items
are aggregates, which WHERE conjuncts are pushable into a single table's
per-snapshot scan and whether an index supports them.  This module
computes all of that from an :class:`repro.sql.ast.Select` plus a
:class:`SchemaProvider` without executing anything.

:mod:`repro.analysis.query.mergeclass` layers the mechanism-level
merge-class certification (RQL100-106) on top of the
:class:`QuerySummary` produced here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.sql import ast
from repro.sql.expressions import conjuncts, walk
from repro.sql.functions import AGGREGATES, BUILTIN_SCALARS
from repro.sql.parser import parse_sql

#: Aggregates an abelian-monoid fold merges exactly across partitions.
MONOID_AGGREGATES = ("min", "max", "sum", "count")
#: Aggregates mergeable only through the hidden stored-row decomposition
#: (AVG -> ``__avg_sum_i`` / ``__avg_cnt_i``).
DECOMPOSABLE_AGGREGATES = ("avg",)
MERGEABLE_AGGREGATES = MONOID_AGGREGATES + DECOMPOSABLE_AGGREGATES

#: Builtins whose value depends on hidden mutable state: calling them
#: from a Qq makes the retrospection irreproducible and partition-order
#: dependent.
STATEFUL_FUNCTIONS = frozenset({"rql_workers"})
#: RQL names the mechanism rewriter resolves to a constant per snapshot
#: before execution; deterministic by construction.
REWRITTEN_FUNCTIONS = frozenset({"current_snapshot"})
#: Scalars that always map equal inputs to equal outputs.
DETERMINISTIC_BUILTINS = frozenset(BUILTIN_SCALARS) | {"snapshot_id"}


# ---------------------------------------------------------------------------
# Schema providers
# ---------------------------------------------------------------------------


class SchemaProvider:
    """What resolution needs to know about the database.

    Three implementations: :class:`StaticSchema` (built from DDL text,
    used by the lint driver), :class:`CatalogSchema` (snapshot of a live
    :class:`~repro.sql.database.Database` catalog, used by the parallel
    executor) and :class:`ContextSchema` (adapter over the planner's
    ``ExecutionContext``, used by EXPLAIN).
    """

    def table_columns(self, name: str) -> Optional[List[Tuple[str, str]]]:
        """``[(column, declared type), ...]`` or None if unknown."""
        raise NotImplementedError

    def table_indexes(self, name: str) -> List[Tuple[str, List[str]]]:
        """``[(index name, [columns...]), ...]`` including the PK."""
        return []

    def known_functions(self) -> Set[str]:
        """Lower-cased names of registered scalar functions."""
        return set()


class StaticSchema(SchemaProvider):
    """Dictionary-backed schema, typically built from DDL text."""

    def __init__(self) -> None:
        self._tables: Dict[str, List[Tuple[str, str]]] = {}
        self._indexes: Dict[str, List[Tuple[str, List[str]]]] = {}
        self._functions: Set[str] = set()

    @classmethod
    def from_ddl(cls, ddl: str) -> "StaticSchema":
        schema = cls()
        schema.add_ddl(ddl)
        return schema

    def add_ddl(self, ddl: str) -> None:
        """Fold CREATE TABLE / CREATE INDEX statements into the schema."""
        for statement in parse_sql(ddl):
            if isinstance(statement, ast.CreateTable):
                self.add_table(
                    statement.name,
                    [(c.name, c.type_name) for c in statement.columns],
                    primary_key=list(statement.primary_key),
                )
            elif isinstance(statement, ast.CreateIndex):
                self.add_index(statement.name, statement.table,
                               list(statement.columns))

    def add_table(self, name: str,
                  columns: Sequence[Tuple[str, str]],
                  primary_key: Sequence[str] = ()) -> None:
        self._tables[name.lower()] = list(columns)
        if primary_key:
            self.add_index(f"__pk_{name.lower()}", name, list(primary_key))

    def add_index(self, name: str, table: str,
                  columns: Sequence[str]) -> None:
        self._indexes.setdefault(table.lower(), []).append(
            (name, list(columns)))

    def add_function(self, name: str) -> None:
        self._functions.add(name.lower())

    def table_columns(self, name: str) -> Optional[List[Tuple[str, str]]]:
        return self._tables.get(name.lower())

    def table_indexes(self, name: str) -> List[Tuple[str, List[str]]]:
        return list(self._indexes.get(name.lower(), []))

    def known_functions(self) -> Set[str]:
        return set(self._functions)


class CatalogSchema(StaticSchema):
    """Schema snapshot of a live database (main + aux catalogs + UDFs).

    Materialized eagerly at construction so no read context outlives the
    provider; a mechanism run certifies against the catalog as of the
    call, which matches what ``validate_qs``/``rewrite_qq`` see.
    """

    def __init__(self, db) -> None:
        super().__init__()
        from repro.sql.catalog import Catalog
        for engine in (db.engine, db.aux_engine):
            ctx = engine.begin_read()
            try:
                source = engine.read_source(ctx)
                catalog = Catalog(source, engine.pager.get_root("catalog"))
                for info in catalog.list_tables():
                    if info.name.lower() in self._tables:
                        continue  # main shadows temp on name collisions
                    self.add_table(
                        info.name,
                        [(c.name, c.type_name) for c in info.columns],
                        primary_key=list(info.primary_key),
                    )
                for index in catalog.list_indexes():
                    self.add_index(index.name, index.table,
                                   list(index.columns))
            finally:
                ctx.close()
        for name in db.functions.snapshot():
            self.add_function(name)


class ContextSchema(SchemaProvider):
    """Adapter over a planner ``ExecutionContext`` (EXPLAIN surface)."""

    def __init__(self, ctx) -> None:
        self._ctx = ctx

    def table_columns(self, name: str) -> Optional[List[Tuple[str, str]]]:
        try:
            access = self._ctx.open_table(name)
        except ReproError:
            return None
        return [(c.name, c.type_name) for c in access.info.columns]

    def table_indexes(self, name: str) -> List[Tuple[str, List[str]]]:
        try:
            access = self._ctx.open_table(name)
            indexes = self._ctx.open_indexes(access)
        except ReproError:
            return []
        return [(ix.info.name, list(ix.info.columns)) for ix in indexes]

    def known_functions(self) -> Set[str]:
        return {name.lower() for name in self._ctx.functions}


# ---------------------------------------------------------------------------
# Query summary
# ---------------------------------------------------------------------------


@dataclass
class SemanticIssue:
    """A resolution/shape problem found statically (feeds RQL100)."""

    message: str
    line: int = 0
    col: int = 0


@dataclass
class OutputColumn:
    """One resolved select-list entry."""

    name: str
    type_name: str
    kind: str  # 'aggregate' | 'scalar' | 'column' | 'constant'


@dataclass
class Predicate:
    """One WHERE conjunct with its pushdown/index classification."""

    text: str
    tables: Tuple[str, ...]  # binding names the conjunct touches
    pushable: bool
    indexed_by: Optional[str] = None  # supporting index, if any
    index_candidate: Optional[Tuple[str, str]] = None  # (table, column)
    line: int = 0
    col: int = 0


@dataclass
class QuerySummary:
    """Everything rqlint knows statically about one SELECT."""

    tables: List[str] = field(default_factory=list)  # base tables, FROM order
    read_columns: Dict[str, List[str]] = field(default_factory=dict)
    outputs: List[OutputColumn] = field(default_factory=list)
    aggregate_calls: List[ast.FunctionCall] = field(default_factory=list)
    scalar_functions: Set[str] = field(default_factory=set)
    unknown_functions: Set[str] = field(default_factory=set)
    stateful_functions: Set[str] = field(default_factory=set)
    predicates: List[Predicate] = field(default_factory=list)
    has_group_by: bool = False
    has_order_by: bool = False
    has_limit: bool = False
    distinct: bool = False
    issues: List[SemanticIssue] = field(default_factory=list)

    @property
    def resolved(self) -> bool:
        return not self.issues

    @property
    def pushable_predicates(self) -> List[Predicate]:
        return [p for p in self.predicates if p.pushable]

    @property
    def index_candidates(self) -> List[Tuple[str, str]]:
        return [p.index_candidate for p in self.predicates
                if p.index_candidate is not None]


# ---------------------------------------------------------------------------
# Expression rendering (for diagnostics and EXPLAIN)
# ---------------------------------------------------------------------------


def render_expr(expr: Optional[ast.Expr]) -> str:
    """Render an expression back to compact SQL-ish text."""
    if expr is None:
        return ""
    if isinstance(expr, ast.Literal):
        if expr.value is None:
            return "NULL"
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(expr.value, bytes):
            return f"x'{expr.value.hex()}'"
        return repr(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return expr.display()
    if isinstance(expr, ast.UnaryOp):
        sep = " " if expr.op.isalpha() else ""
        return f"{expr.op}{sep}{render_expr(expr.operand)}"
    if isinstance(expr, ast.BinaryOp):
        return (f"{render_expr(expr.left)} {expr.op} "
                f"{render_expr(expr.right)}")
    if isinstance(expr, ast.IsNull):
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{render_expr(expr.operand)} {middle}"
    if isinstance(expr, ast.InList):
        items = ", ".join(render_expr(item) for item in expr.items)
        middle = "NOT IN" if expr.negated else "IN"
        return f"{render_expr(expr.operand)} {middle} ({items})"
    if isinstance(expr, ast.Between):
        middle = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (f"{render_expr(expr.operand)} {middle} "
                f"{render_expr(expr.low)} AND {render_expr(expr.high)}")
    if isinstance(expr, ast.Like):
        middle = "NOT LIKE" if expr.negated else "LIKE"
        return f"{render_expr(expr.operand)} {middle} {render_expr(expr.pattern)}"
    if isinstance(expr, ast.FunctionCall):
        if expr.star:
            return f"{expr.name}(*)"
        inner = ", ".join(render_expr(arg) for arg in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(render_expr(expr.operand))
        for condition, result in expr.branches:
            parts.append(
                f"WHEN {render_expr(condition)} THEN {render_expr(result)}")
        if expr.else_result is not None:
            parts.append(f"ELSE {render_expr(expr.else_result)}")
        parts.append("END")
        return " ".join(parts)
    return f"<{type(expr).__name__}>"


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------


def _flatten_from(source) -> Tuple[List[ast.TableRef], List[ast.Expr]]:
    """FROM tree -> (table refs in order, join ON conditions)."""
    refs: List[ast.TableRef] = []
    conditions: List[ast.Expr] = []

    def visit(node) -> None:
        if node is None:
            return
        if isinstance(node, ast.TableRef):
            refs.append(node)
            return
        if isinstance(node, ast.Join):
            visit(node.left)
            visit(node.right)
            if node.condition is not None:
                conditions.append(node.condition)
            return
        raise NotImplementedError(
            f"unexpected FROM node {type(node).__name__}")

    visit(source)
    return refs, conditions


class _Resolver:
    """Single-use name resolution state for one SELECT."""

    def __init__(self, select: ast.Select, schema: SchemaProvider) -> None:
        self.select = select
        self.schema = schema
        self.summary = QuerySummary()
        # binding (lower) -> (base table name, [(col, type)] or None)
        self.bindings: Dict[str, Tuple[str, Optional[List[Tuple[str, str]]]]] = {}
        self.binding_order: List[str] = []
        self.aliases: Set[str] = set()

    def issue(self, message: str, node=None) -> None:
        line = getattr(node, "line", 0) if node is not None else 0
        col = getattr(node, "col", 0) if node is not None else 0
        self.summary.issues.append(SemanticIssue(message, line, col))

    # -- FROM -------------------------------------------------------------

    def bind_from(self) -> List[ast.Expr]:
        refs, join_conditions = _flatten_from(self.select.source)
        for ref in refs:
            binding = ref.binding.lower()
            if binding in self.bindings:
                self.issue(f"duplicate table binding: {ref.binding}", ref)
                continue
            columns = self.schema.table_columns(ref.name)
            if columns is None:
                self.issue(f"no such table: {ref.name}", ref)
            else:
                if ref.name not in self.summary.tables:
                    self.summary.tables.append(ref.name)
            self.bindings[binding] = (ref.name, columns)
            self.binding_order.append(binding)
        return join_conditions

    # -- column references -------------------------------------------------

    def resolve_ref(self, ref: ast.ColumnRef,
                    allow_aliases: bool = False) -> Optional[str]:
        """Resolve to the binding that owns the column (or None)."""
        name = ref.name.lower()
        if ref.table is not None:
            binding = ref.table.lower()
            if binding not in self.bindings:
                self.issue(f"no such table: {ref.table}", ref)
                return None
            base, columns = self.bindings[binding]
            if columns is None:
                return None  # unknown table already reported
            if not any(col.lower() == name for col, _ in columns):
                self.issue(f"no such column: {ref.display()}", ref)
                return None
            self._note_read(binding, ref.name)
            return binding
        owners = []
        for binding in self.binding_order:
            _, columns = self.bindings[binding]
            if columns is None:
                continue
            if any(col.lower() == name for col, _ in columns):
                owners.append(binding)
        if len(owners) > 1:
            self.issue(f"ambiguous column name: {ref.name}", ref)
            return None
        if not owners:
            if allow_aliases and name in self.aliases:
                return None  # refers to a select-list alias, not a read
            if any(columns is None for _, columns in self.bindings.values()):
                return None  # can't decide against an unknown table
            self.issue(f"no such column: {ref.name}", ref)
            return None
        self._note_read(owners[0], ref.name)
        return owners[0]

    def _note_read(self, binding: str, column: str) -> None:
        base, columns = self.bindings[binding]
        declared = column
        if columns is not None:
            for col, _ in columns:
                if col.lower() == column.lower():
                    declared = col
                    break
        reads = self.summary.read_columns.setdefault(base, [])
        if declared not in reads:
            reads.append(declared)

    def column_type(self, ref: ast.ColumnRef) -> str:
        name = ref.name.lower()
        candidates = ([ref.table.lower()] if ref.table is not None
                      else self.binding_order)
        for binding in candidates:
            if binding not in self.bindings:
                continue
            _, columns = self.bindings[binding]
            if columns is None:
                continue
            for col, type_name in columns:
                if col.lower() == name:
                    return type_name
        return ""

    # -- expression classification ----------------------------------------

    def scan_expr(self, expr: ast.Expr, allow_aliases: bool = False) -> None:
        """Resolve references and classify function calls in a subtree."""
        for node in walk(expr):
            if isinstance(node, ast.ColumnRef):
                self.resolve_ref(node, allow_aliases=allow_aliases)
            elif isinstance(node, ast.FunctionCall):
                self._classify_function(node)

    def _classify_function(self, call: ast.FunctionCall) -> None:
        name = call.name.lower()
        if name in AGGREGATES or call.is_aggregate_name():
            self.summary.aggregate_calls.append(call)
            return
        self.summary.scalar_functions.add(name)
        if name in STATEFUL_FUNCTIONS:
            self.summary.stateful_functions.add(name)
        elif name not in (DETERMINISTIC_BUILTINS | REWRITTEN_FUNCTIONS
                          | self.schema.known_functions()):
            self.summary.unknown_functions.add(name)

    # -- type inference ----------------------------------------------------

    def infer_type(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.Literal):
            if isinstance(expr.value, bool) or isinstance(expr.value, int):
                return "INTEGER"
            if isinstance(expr.value, float):
                return "REAL"
            if isinstance(expr.value, str):
                return "TEXT"
            if isinstance(expr.value, bytes):
                return "BLOB"
            return ""
        if isinstance(expr, ast.ColumnRef):
            return self.column_type(expr)
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "NOT":
                return "INTEGER"
            return self.infer_type(expr.operand)
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("AND", "OR", "=", "!=", "<", "<=", ">", ">="):
                return "INTEGER"  # three-valued logic result
            if expr.op == "||":
                return "TEXT"
            left = self.infer_type(expr.left)
            right = self.infer_type(expr.right)
            if "REAL" in (left, right) or expr.op == "/":
                return "REAL"
            if left == right == "INTEGER":
                return "INTEGER"
            return "NUMERIC"
        if isinstance(expr, (ast.IsNull, ast.InList, ast.Between, ast.Like)):
            return "INTEGER"
        if isinstance(expr, ast.FunctionCall):
            name = expr.name.lower()
            if name in ("count",):
                return "INTEGER"
            if name in ("sum", "total", "avg"):
                return "REAL"
            if name in ("min", "max") and expr.args:
                return self.infer_type(expr.args[0])
            if name in ("group_concat", "lower", "upper", "substr",
                        "substring"):
                return "TEXT"
            if name in ("abs", "round", "sqrt"):
                return "REAL"
            if name == "length":
                return "INTEGER"
            return ""
        if isinstance(expr, ast.CaseExpr):
            for _, result in expr.branches:
                inferred = self.infer_type(result)
                if inferred:
                    return inferred
            if expr.else_result is not None:
                return self.infer_type(expr.else_result)
        return ""

    # -- outputs -----------------------------------------------------------

    def classify_outputs(self) -> None:
        from repro.sql.expressions import contains_aggregate
        for item in self.select.items:
            if item.is_star:
                self._expand_star(item)
                continue
            expr = item.expr
            if expr is None:
                continue
            if item.alias:
                self.aliases.add(item.alias.lower())
            name = item.alias or render_expr(expr)
            if contains_aggregate(expr):
                kind = "aggregate"
            elif isinstance(expr, ast.ColumnRef):
                kind = "column"
            elif isinstance(expr, ast.Literal):
                kind = "constant"
            else:
                kind = "scalar"
            self.summary.outputs.append(
                OutputColumn(name=name, type_name=self.infer_type(expr),
                             kind=kind))

    def _expand_star(self, item: ast.SelectItem) -> None:
        targets = ([item.star_table.lower()] if item.star_table
                   else self.binding_order)
        if item.star_table and item.star_table.lower() not in self.bindings:
            self.issue(f"no such table: {item.star_table}", item)
            return
        if not targets:
            self.issue("SELECT * with no FROM clause", item)
            return
        for binding in targets:
            _, columns = self.bindings.get(binding, (None, None))
            if columns is None:
                continue  # unknown table already reported
            for col, type_name in columns:
                self._note_read(binding, col)
                self.summary.outputs.append(
                    OutputColumn(name=col, type_name=type_name,
                                 kind="column"))

    # -- predicates --------------------------------------------------------

    def classify_predicates(self, join_conditions: List[ast.Expr]) -> None:
        parts: List[ast.Expr] = []
        for condition in join_conditions:
            parts.extend(conjuncts(condition))
        parts.extend(conjuncts(self.select.where))
        for part in parts:
            touched: List[str] = []
            for node in walk(part):
                if isinstance(node, ast.ColumnRef):
                    owner = self._owner_of(node)
                    if owner is not None and owner not in touched:
                        touched.append(owner)
            pushable = len(touched) <= 1
            predicate = Predicate(
                text=render_expr(part),
                tables=tuple(self.bindings[b][0] for b in touched),
                pushable=pushable,
                line=getattr(part, "line", 0),
                col=getattr(part, "col", 0),
            )
            if pushable and touched:
                self._check_index_support(predicate, part, touched[0])
            self.summary.predicates.append(predicate)

    def _owner_of(self, ref: ast.ColumnRef) -> Optional[str]:
        """Like resolve_ref but silent (refs were already reported)."""
        name = ref.name.lower()
        if ref.table is not None:
            binding = ref.table.lower()
            return binding if binding in self.bindings else None
        owners = []
        for binding in self.binding_order:
            _, columns = self.bindings[binding]
            if columns is None:
                continue
            if any(col.lower() == name for col, _ in columns):
                owners.append(binding)
        return owners[0] if len(owners) == 1 else None

    def _check_index_support(self, predicate: Predicate, part: ast.Expr,
                             binding: str) -> None:
        column = _sargable_column(part)
        if column is None:
            return  # not an index-shaped predicate; scan is inherent
        base, _ = self.bindings[binding]
        for index_name, columns in self.schema.table_indexes(base):
            if columns and columns[0].lower() == column.lower():
                predicate.indexed_by = index_name
                return
        predicate.index_candidate = (base, column)

    # -- entry -------------------------------------------------------------

    def run(self) -> QuerySummary:
        join_conditions = self.bind_from()
        self.classify_outputs()
        if self.select.where is not None:
            self.scan_expr(self.select.where)
        for item in self.select.items:
            if item.expr is not None:
                self.scan_expr(item.expr)
        for expr in self.select.group_by:
            self.scan_expr(expr, allow_aliases=True)
        if self.select.having is not None:
            self.scan_expr(self.select.having, allow_aliases=True)
        for order in self.select.order_by:
            self.scan_expr(order.expr, allow_aliases=True)
        for condition in join_conditions:
            self.scan_expr(condition)
        self.classify_predicates(join_conditions)
        self.summary.has_group_by = bool(self.select.group_by)
        self.summary.has_order_by = bool(self.select.order_by)
        self.summary.has_limit = self.select.limit is not None
        self.summary.distinct = self.select.distinct
        return self.summary


def _sargable_column(part: ast.Expr) -> Optional[str]:
    """Column name if the conjunct has an index-servable shape.

    Recognizes ``col OP literal`` (either side), ``col BETWEEN lit AND
    lit``, and ``col IN (lit, ...)``.  Anything else (LIKE, arithmetic
    on the column, multi-column) cannot use a B-tree range anyway.
    """
    def is_const(expr: ast.Expr) -> bool:
        return all(not isinstance(node, ast.ColumnRef)
                   for node in walk(expr))

    if isinstance(part, ast.BinaryOp) and part.op in (
            "=", "<", "<=", ">", ">="):
        if isinstance(part.left, ast.ColumnRef) and is_const(part.right):
            return part.left.name
        if isinstance(part.right, ast.ColumnRef) and is_const(part.left):
            return part.right.name
        return None
    if isinstance(part, ast.Between) and not part.negated:
        if isinstance(part.operand, ast.ColumnRef) \
                and is_const(part.low) and is_const(part.high):
            return part.operand.name
        return None
    if isinstance(part, ast.InList) and not part.negated:
        if isinstance(part.operand, ast.ColumnRef) \
                and all(is_const(item) for item in part.items):
            return part.operand.name
    return None


def resolve_select(select: ast.Select,
                   schema: SchemaProvider) -> QuerySummary:
    """Statically resolve one SELECT against a schema."""
    return _Resolver(select, schema).run()


# ---------------------------------------------------------------------------
# Qs (snapshot-set query) analysis
# ---------------------------------------------------------------------------


@dataclass
class QsRange:
    """Static bounds on the snapshot ids a Qs can produce."""

    lower: Optional[int] = None
    upper: Optional[int] = None

    @property
    def bounded(self) -> bool:
        return self.lower is not None and self.upper is not None

    @property
    def statically_empty(self) -> bool:
        return self.bounded and self.lower > self.upper  # type: ignore[operator]

    def describe(self) -> str:
        if self.statically_empty:
            return "empty"
        lo = "-inf" if self.lower is None else str(self.lower)
        hi = "+inf" if self.upper is None else str(self.upper)
        return f"[{lo}, {hi}]"


def analyze_qs(select: ast.Select) -> Tuple[List[SemanticIssue], QsRange]:
    """Validate Qs shape and extract static snapshot-range bounds.

    Mirrors :func:`repro.core.rewrite.validate_qs` (SELECT without AS
    OF) and additionally reads ``snap_id OP literal`` conjuncts so the
    certificate can carry ``[lo, hi]`` bounds — or report the range as
    unbounded/empty (RQL103).
    """
    issues: List[SemanticIssue] = []
    bounds = QsRange()
    if select.as_of is not None:
        issues.append(SemanticIssue(
            "Qs runs on the SnapIds table, not a snapshot (AS OF found)",
            select.line, select.col))
    id_column = _qs_id_column(select)
    if id_column is None:
        issues.append(SemanticIssue(
            "Qs must produce a single snapshot-id column",
            select.line, select.col))
        return issues, bounds
    for part in conjuncts(select.where):
        _narrow_bounds(bounds, part, id_column)
    return issues, bounds


def _qs_id_column(select: ast.Select) -> Optional[str]:
    if len(select.items) != 1:
        return None
    item = select.items[0]
    if item.is_star or item.expr is None:
        return None
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.name
    return None


def _narrow_bounds(bounds: QsRange, part: ast.Expr, id_column: str) -> None:
    def is_id(expr: ast.Expr) -> bool:
        return (isinstance(expr, ast.ColumnRef)
                and expr.name.lower() == id_column.lower())

    def int_value(expr: ast.Expr) -> Optional[int]:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            return expr.value
        return None

    if isinstance(part, ast.BinaryOp):
        op, left, right = part.op, part.left, part.right
        value = None
        if is_id(left):
            value = int_value(right)
        elif is_id(right):
            value = int_value(left)
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            op = flip.get(op, op)
        if value is None:
            return
        if op == "=":
            _raise_lower(bounds, value)
            _lower_upper(bounds, value)
        elif op == "<":
            _lower_upper(bounds, value - 1)
        elif op == "<=":
            _lower_upper(bounds, value)
        elif op == ">":
            _raise_lower(bounds, value + 1)
        elif op == ">=":
            _raise_lower(bounds, value)
    elif isinstance(part, ast.Between) and not part.negated \
            and is_id(part.operand):
        low = int_value(part.low)
        high = int_value(part.high)
        if low is not None:
            _raise_lower(bounds, low)
        if high is not None:
            _lower_upper(bounds, high)
    elif isinstance(part, ast.InList) and not part.negated \
            and is_id(part.operand):
        values = [int_value(item) for item in part.items]
        if values and all(v is not None for v in values):
            _raise_lower(bounds, min(values))  # type: ignore[type-var]
            _lower_upper(bounds, max(values))  # type: ignore[type-var]


def _raise_lower(bounds: QsRange, value: int) -> None:
    if bounds.lower is None or value > bounds.lower:
        bounds.lower = value


def _lower_upper(bounds: QsRange, value: int) -> None:
    if bounds.upper is None or value < bounds.upper:
        bounds.upper = value
