"""Planner statistics catalog (the ``ANALYZE`` machinery).

``ANALYZE [table]`` scans each table once and records per-table and
per-column statistics — row count, an estimated page count, and for
every column the distinct-value count plus min/max — stamped with the
latest declared snapshot id.  The rows persist in the **aux** engine's
``__rql_stats`` table (statistics, like SnapIds, are non-snapshotable
metadata), so one history of statistics serves every ``AS OF`` reader:
a query pinned to snapshot *s* plans with the newest statistics
gathered at or before *s* and falls back to the heuristic planner when
none exist yet.

The cost model consumes statistics through :class:`StatsProvider`;
:class:`DeclaredStats` is the static implementation planlint and the
golden-plan corpus use (no database required), while the live
implementation is ``repro.sql.database._Context.table_stats``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.storage.page import DEFAULT_PAGE_SIZE

#: aux-engine table holding one row per (table, snapshot, column); the
#: table-level row uses the empty column name.
STATS_TABLE = "__rql_stats"

#: column layout of ``__rql_stats`` (created on first ANALYZE).
STATS_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("tbl", "TEXT"),
    ("snap", "INTEGER"),
    ("col", "TEXT"),
    ("row_count", "INTEGER"),
    ("page_count", "INTEGER"),
    ("n_distinct", "INTEGER"),
    ("min_repr", "TEXT"),
    ("max_repr", "TEXT"),
)

#: selectivity defaults when a column has no statistics (SQLite-ish).
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.25


@dataclass(frozen=True)
class ColumnStats:
    """Distribution summary for one column."""

    column: str
    distinct: int
    min_value: object = None
    max_value: object = None


@dataclass(frozen=True)
class TableStats:
    """One table's statistics as gathered by ANALYZE at a snapshot."""

    table: str           #: lowered table name
    snapshot_id: int     #: latest declared snapshot when gathered
    row_count: int
    page_count: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())

    def eq_selectivity(self, column: str) -> float:
        """Estimated fraction of rows matching ``column = const``."""
        stats = self.column(column)
        if stats is None or stats.distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        return 1.0 / stats.distinct

    def range_selectivity(self, column: str,
                          lo: object = None, hi: object = None) -> float:
        """Estimated fraction of rows with ``lo <= column <= hi``.

        Linear interpolation over the recorded [min, max] domain for
        numeric columns; :data:`DEFAULT_RANGE_SELECTIVITY` otherwise.
        The fraction is returned *unclamped* — corrupt statistics (a
        reversed min/max domain) surface as selectivities above 1.0,
        which the RQL114 cost-model sanity rule flags.
        """
        stats = self.column(column)
        if stats is None:
            return DEFAULT_RANGE_SELECTIVITY
        lo_known, hi_known = stats.min_value, stats.max_value
        numeric = all(
            isinstance(v, (int, float)) or v is None
            for v in (lo, hi, lo_known, hi_known)
        )
        if not numeric or lo_known is None or hi_known is None:
            return DEFAULT_RANGE_SELECTIVITY
        span = float(hi_known) - float(lo_known)
        if span == 0:
            return 1.0
        lo_eff = float(lo_known) if lo is None else float(lo)
        hi_eff = float(hi_known) if hi is None else float(hi)
        return (hi_eff - lo_eff) / span


class StatsProvider:
    """What the cost model needs: statistics by table name, or None."""

    def table_stats(self, name: str) -> Optional[TableStats]:
        raise NotImplementedError


class DeclaredStats(StatsProvider):
    """Dict-backed provider for planlint, the golden-plan corpus and
    tests — statistics declared up front instead of gathered."""

    def __init__(self, stats: Iterable[TableStats] = ()) -> None:
        self._stats: Dict[str, TableStats] = {}
        for entry in stats:
            self.declare(entry)

    def declare(self, stats: TableStats) -> None:
        self._stats[stats.table.lower()] = stats

    def table_stats(self, name: str) -> Optional[TableStats]:
        return self._stats.get(name.lower())


class EmptyStats(StatsProvider):
    """No statistics at all: the planner stays on its heuristics."""

    def table_stats(self, name: str) -> Optional[TableStats]:
        return None


# ---------------------------------------------------------------------------
# Gathering
# ---------------------------------------------------------------------------

def _value_width(value: object) -> int:
    """Rough on-page width of one value (row-size estimation)."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, bytes):
        return len(value) + 2
    return len(str(value)) + 2


def compute_table_stats(access, snapshot_id: int,
                        page_size: int = DEFAULT_PAGE_SIZE) -> TableStats:
    """One full scan -> :class:`TableStats` for ``access`` (a
    ``TableAccess``).  The page count is a size estimate (serialized
    row bytes / page size), which is what the cost model needs: it
    tracks how many Pagelog pages a cold sequential scan must fetch.
    """
    info = access.info
    names = [c.lower() for c in info.column_names()]
    distinct: List[set] = [set() for _ in names]
    minima: List[object] = [None] * len(names)
    maxima: List[object] = [None] * len(names)
    row_count = 0
    total_bytes = 0
    for row in access.scan_rows():
        row_count += 1
        for position, value in enumerate(row):
            total_bytes += _value_width(value)
            if value is None:
                continue
            distinct[position].add(value)
            try:
                low, high = minima[position], maxima[position]
                if low is None or value < low:
                    minima[position] = value
                if high is None or value > high:
                    maxima[position] = value
            except TypeError:
                # Mixed-type column: min/max are meaningless; keep the
                # distinct count, drop the bounds.
                minima[position] = None
                maxima[position] = None
    columns = {
        name: ColumnStats(
            column=name, distinct=len(distinct[position]),
            min_value=minima[position], max_value=maxima[position],
        )
        for position, name in enumerate(names)
    }
    return TableStats(
        table=info.name.lower(), snapshot_id=snapshot_id,
        row_count=row_count,
        page_count=max(1, -(-total_bytes // page_size)),
        columns=columns,
    )


# ---------------------------------------------------------------------------
# Persistence (rows of ``__rql_stats``)
# ---------------------------------------------------------------------------

def _encode_value(value: object) -> Optional[str]:
    if value is None:
        return None
    try:
        return json.dumps(value)
    except (TypeError, ValueError):
        return None


def _decode_value(text: object) -> object:
    if text is None:
        return None
    try:
        return json.loads(str(text))
    except (TypeError, ValueError):
        return None


def stats_to_rows(stats: TableStats) -> List[Tuple]:
    """``__rql_stats`` rows for one table's statistics."""
    rows: List[Tuple] = [(
        stats.table, stats.snapshot_id, "",
        stats.row_count, stats.page_count, 0, None, None,
    )]
    for name in sorted(stats.columns):
        col = stats.columns[name]
        rows.append((
            stats.table, stats.snapshot_id, name,
            stats.row_count, stats.page_count, col.distinct,
            _encode_value(col.min_value), _encode_value(col.max_value),
        ))
    return rows


def stats_from_rows(table: str, rows: Sequence[Tuple],
                    as_of: Optional[int] = None) -> Optional[TableStats]:
    """Reassemble the newest :class:`TableStats` visible at ``as_of``.

    ``rows`` are ``__rql_stats`` tuples for one table (any mix of
    snapshots); the newest gathering with ``snap <= as_of`` wins, or
    the newest overall when ``as_of`` is None.  Statistics gathered
    only *after* the pinned snapshot are invisible to it — the AS OF
    consistency rule.
    """
    key = table.lower()
    eligible = [
        row for row in rows
        if str(row[0]).lower() == key
        and (as_of is None or int(row[1]) <= as_of)
    ]
    if not eligible:
        return None
    snap = max(int(row[1]) for row in eligible)
    chosen = [row for row in eligible if int(row[1]) == snap]
    row_count = page_count = 0
    columns: Dict[str, ColumnStats] = {}
    for row in chosen:
        _tbl, _snap, col, rows_n, pages_n, n_distinct, lo, hi = row
        if not col:
            row_count, page_count = int(rows_n), int(pages_n)
            continue
        columns[str(col)] = ColumnStats(
            column=str(col), distinct=int(n_distinct),
            min_value=_decode_value(lo), max_value=_decode_value(hi),
        )
    return TableStats(
        table=key, snapshot_id=snap, row_count=row_count,
        page_count=page_count, columns=columns,
    )
