"""Abstract syntax tree for the SQL subset.

Plain dataclasses, produced by :mod:`repro.sql.parser` and consumed by
:mod:`repro.sql.planner`.  Expression nodes carry no resolution state;
the planner compiles them against a scope (see
:mod:`repro.sql.expressions`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Node:
    """Mixin giving AST nodes 1-based source positions.

    ``line``/``col`` are filled in by the parser as plain instance
    attributes.  They are deliberately *not* dataclass fields: AST
    equality (used by the planner's expression substitution and
    aggregate-call dedup) must ignore where a node was written.
    """

    line = 0
    col = 0


class Expr(Node):
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    """A constant value (NULL, number, string, blob)."""
    value: object


@dataclass
class ColumnRef(Expr):
    """A possibly-qualified column reference (``t.a`` or ``a``)."""
    table: Optional[str]
    name: str

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class UnaryOp(Expr):
    """Unary operator: ``-x``, ``+x``, ``NOT x``."""
    op: str  # '-', '+', 'NOT'
    operand: Expr


@dataclass
class BinaryOp(Expr):
    """Binary operator: arithmetic, comparison, AND/OR, ``||``."""
    op: str  # arithmetic, comparison, AND, OR, '||'
    left: Expr
    right: Expr


@dataclass
class IsNull(Expr):
    """``x IS [NOT] NULL``."""
    operand: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    """``x [NOT] IN (e1, e2, ...)``."""
    operand: Expr
    items: List[Expr]
    negated: bool = False


@dataclass
class Between(Expr):
    """``x [NOT] BETWEEN low AND high``."""
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class Like(Expr):
    """``x [NOT] LIKE pattern`` (%, _ wildcards)."""
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass
class FunctionCall(Expr):
    """``f(args)``, ``f(DISTINCT arg)`` or ``COUNT(*)``."""
    name: str
    args: List[Expr]
    distinct: bool = False
    star: bool = False  # COUNT(*)

    def is_aggregate_name(self) -> bool:
        return self.name.upper() in ("COUNT", "SUM", "MIN", "MAX", "AVG",
                                     "TOTAL", "GROUP_CONCAT")


@dataclass
class CaseExpr(Expr):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""
    operand: Optional[Expr]
    branches: List[Tuple[Expr, Expr]]  # (condition/value, result)
    else_result: Optional[Expr]


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


@dataclass
class SelectItem(Node):
    """One select-list entry: expression, ``*`` or ``t.*``."""
    expr: Optional[Expr]  # None for '*' / 't.*'
    alias: Optional[str] = None
    star_table: Optional[str] = None  # set for 't.*'
    is_star: bool = False


@dataclass
class TableRef(Node):
    """A FROM-clause table with optional alias."""
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class Join(Node):
    """A join node in the FROM tree (condition None = comma/cross)."""
    left: object  # TableRef | Join
    right: TableRef
    condition: Optional[Expr]  # None for CROSS / comma join


@dataclass
class OrderItem(Node):
    """One ORDER BY key with direction."""
    expr: Expr
    descending: bool = False


@dataclass
class Select(Node):
    """A full SELECT, including the Retro ``AS OF`` extension."""
    items: List[SelectItem]
    source: Optional[object] = None  # TableRef | Join | None (SELECT 1)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False
    as_of: Optional[Expr] = None  # SELECT AS OF <snapshot> ...


# ---------------------------------------------------------------------------
# DML / DDL / TCL
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef:
    """One column in CREATE TABLE."""
    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False
    default: Optional[Expr] = None


@dataclass
class CreateTable:
    """CREATE [TEMP] TABLE, plain or AS SELECT."""
    name: str
    columns: List[ColumnDef]
    temporary: bool = False
    if_not_exists: bool = False
    as_select: Optional[Select] = None
    primary_key: List[str] = field(default_factory=list)


@dataclass
class DropTable:
    """DROP TABLE [IF EXISTS]."""
    name: str
    if_exists: bool = False


@dataclass
class CreateIndex:
    """CREATE [UNIQUE] INDEX ... ON table (cols)."""
    name: str
    table: str
    columns: List[str]
    unique: bool = False
    if_not_exists: bool = False


@dataclass
class DropIndex:
    """DROP INDEX [IF EXISTS]."""
    name: str
    if_exists: bool = False


@dataclass
class CreateMaterializedView:
    """CREATE MATERIALIZED VIEW name AS Mechanism('Qq'[, 'arg']).

    The defining query is one of the four retrospective mechanisms
    applied to a per-snapshot query ``qq`` (plus the aggregate argument
    for the aggregating mechanisms); the snapshot set is implicit —
    every declared snapshot up to the refresh target.
    """
    name: str
    mechanism: str
    qq: str
    arg: Optional[str] = None
    if_not_exists: bool = False


@dataclass
class RefreshMaterializedView:
    """REFRESH MATERIALIZED VIEW name [FULL]."""
    name: str
    full: bool = False


@dataclass
class DropMaterializedView:
    """DROP MATERIALIZED VIEW [IF EXISTS] name."""
    name: str
    if_exists: bool = False


@dataclass
class Insert:
    """INSERT INTO ... VALUES / SELECT."""
    table: str
    columns: List[str]
    rows: List[List[Expr]] = field(default_factory=list)
    select: Optional[Select] = None


@dataclass
class Delete:
    """DELETE FROM table [WHERE]."""
    table: str
    where: Optional[Expr] = None


@dataclass
class Update:
    """UPDATE table SET ... [WHERE]."""
    table: str
    assignments: List[Tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None


@dataclass
class Analyze:
    """ANALYZE [table]: gather planner statistics into ``__rql_stats``.

    With no table, every table in the main catalog is analyzed.
    """
    table: Optional[str] = None


@dataclass
class Explain:
    """EXPLAIN <statement>: report the access plan."""
    statement: "Statement"


@dataclass
class Begin:
    """BEGIN [TRANSACTION]."""
    pass


@dataclass
class Commit:
    """COMMIT [WITH SNAPSHOT] — the Retro declaration form."""
    with_snapshot: bool = False


@dataclass
class Rollback:
    """ROLLBACK."""
    pass


Statement = object  # union of the dataclasses above
