"""Recursive-descent SQL parser.

Grammar covers the subset RQL and the paper's workloads need: SELECT
(with ``AS OF``, joins, GROUP BY/HAVING, ORDER BY, LIMIT), INSERT,
UPDATE, DELETE, CREATE/DROP TABLE and INDEX, CREATE/REFRESH/DROP
MATERIALIZED VIEW, BEGIN / COMMIT [WITH SNAPSHOT] / ROLLBACK,
expressions with three-valued logic operators, CASE, IN, BETWEEN,
LIKE and function calls.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import (
    BLOB,
    EOF,
    FLOAT,
    IDENT,
    INTEGER,
    KEYWORD,
    OPERATOR,
    STRING,
    Token,
    tokenize,
)

_COMPARISONS = ("=", "==", "!=", "<>", "<", "<=", ">", ">=")
_TYPE_KEYWORDS = ("INTEGER", "REAL", "TEXT", "BLOB", "DATE", "NUMERIC")


def parse_sql(sql: str) -> List[ast.Statement]:
    """Parse one or more ;-separated statements."""
    return Parser(sql).parse_statements()


def parse_one(sql: str) -> ast.Statement:
    """Parse exactly one statement (trailing ';' allowed)."""
    statements = parse_sql(sql)
    if len(statements) != 1:
        raise ParseError(
            f"expected a single statement, found {len(statements)}"
        )
    return statements[0]


def parse_expression(sql: str) -> ast.Expr:
    """Parse a stand-alone expression (used by tests and tools)."""
    parser = Parser(sql)
    expr = parser._expr()
    parser._expect_eof()
    return expr


class Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._peek().matches(kind, value):
            return self._next()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self._peek()
        if not tok.matches(kind, value):
            wanted = value or kind
            raise ParseError(
                f"expected {wanted}, found {tok.value!r}", tok.position
            )
        return self._next()

    def _expect_eof(self) -> None:
        tok = self._peek()
        if tok.kind != EOF:
            raise ParseError(
                f"unexpected trailing input {tok.value!r}", tok.position
            )

    @staticmethod
    def _at(node, tok: Token):
        """Stamp a node with the 1-based source position of ``tok``."""
        node.line = tok.line
        node.col = tok.col
        return node

    def _ident(self) -> str:
        tok = self._peek()
        if tok.kind == IDENT:
            self._next()
            return str(tok.value)
        # Allow non-reserved keywords as identifiers where unambiguous.
        if tok.kind == KEYWORD and tok.value in (
            "DATE", "KEY", "INDEX", "TEMP", "COUNT", "SUM", "MIN", "MAX",
            "AVG", "TEXT", "BLOB", "REAL", "INTEGER", "NUMERIC", "OF",
        ):
            self._next()
            return str(tok.value)
        raise ParseError(f"expected identifier, found {tok.value!r}",
                         tok.position)

    # -- statements ------------------------------------------------------------

    def parse_statements(self) -> List[ast.Statement]:
        statements: List[ast.Statement] = []
        while True:
            while self._accept(OPERATOR, ";"):
                pass
            if self._peek().kind == EOF:
                return statements
            statements.append(self._statement())
            if self._peek().kind == EOF:
                return statements
            self._expect(OPERATOR, ";")

    def _statement(self) -> ast.Statement:
        tok = self._peek()
        if tok.kind != KEYWORD:
            raise ParseError(f"expected a statement, found {tok.value!r}",
                             tok.position)
        keyword = tok.value
        if keyword == "EXPLAIN":
            self._next()
            return ast.Explain(self._statement())
        if keyword == "SELECT":
            return self._select()
        if keyword == "INSERT":
            return self._insert()
        if keyword == "DELETE":
            return self._delete()
        if keyword == "UPDATE":
            return self._update()
        if keyword == "CREATE":
            return self._create()
        if keyword == "DROP":
            return self._drop()
        if keyword == "REFRESH":
            return self._refresh()
        if keyword == "BEGIN":
            self._next()
            self._accept(KEYWORD, "TRANSACTION")
            return ast.Begin()
        if keyword == "COMMIT":
            self._next()
            with_snapshot = False
            if self._accept(KEYWORD, "WITH"):
                self._expect(KEYWORD, "SNAPSHOT")
                with_snapshot = True
            return ast.Commit(with_snapshot=with_snapshot)
        if keyword == "ROLLBACK":
            self._next()
            return ast.Rollback()
        if keyword == "ANALYZE":
            self._next()
            nxt = self._peek()
            table = None
            if nxt.kind != EOF and not nxt.matches(OPERATOR, ";"):
                table = self._ident()
            return ast.Analyze(table=table)
        raise ParseError(f"unsupported statement {keyword}", tok.position)

    # -- SELECT ---------------------------------------------------------------

    def _select(self) -> ast.Select:
        select_tok = self._expect(KEYWORD, "SELECT")
        as_of: Optional[ast.Expr] = None
        if self._peek().matches(KEYWORD, "AS") and \
                self._peek(1).matches(KEYWORD, "OF"):
            self._next()
            self._next()
            as_of = self._primary()
        distinct = False
        if self._accept(KEYWORD, "DISTINCT"):
            distinct = True
        elif self._accept(KEYWORD, "ALL"):
            pass
        items = [self._select_item()]
        while self._accept(OPERATOR, ","):
            items.append(self._select_item())
        source = None
        if self._accept(KEYWORD, "FROM"):
            source = self._from_clause()
        where = self._expr() if self._accept(KEYWORD, "WHERE") else None
        group_by: List[ast.Expr] = []
        having = None
        if self._accept(KEYWORD, "GROUP"):
            self._expect(KEYWORD, "BY")
            group_by.append(self._expr())
            while self._accept(OPERATOR, ","):
                group_by.append(self._expr())
            if self._accept(KEYWORD, "HAVING"):
                having = self._expr()
        order_by: List[ast.OrderItem] = []
        if self._accept(KEYWORD, "ORDER"):
            self._expect(KEYWORD, "BY")
            order_by.append(self._order_item())
            while self._accept(OPERATOR, ","):
                order_by.append(self._order_item())
        limit = offset = None
        if self._accept(KEYWORD, "LIMIT"):
            limit = self._expr()
            if self._accept(KEYWORD, "OFFSET"):
                offset = self._expr()
            elif self._accept(OPERATOR, ","):
                # LIMIT offset, count (SQLite compatibility)
                offset = limit
                limit = self._expr()
        return self._at(ast.Select(
            items=items, source=source, where=where, group_by=group_by,
            having=having, order_by=order_by, limit=limit, offset=offset,
            distinct=distinct, as_of=as_of,
        ), select_tok)

    def _select_item(self) -> ast.SelectItem:
        start = self._peek()
        if self._accept(OPERATOR, "*"):
            return self._at(ast.SelectItem(expr=None, is_star=True), start)
        # 't.*'
        if (self._peek().kind == IDENT
                and self._peek(1).matches(OPERATOR, ".")
                and self._peek(2).matches(OPERATOR, "*")):
            table = self._ident()
            self._next()
            self._next()
            return self._at(
                ast.SelectItem(expr=None, is_star=True, star_table=table),
                start)
        expr = self._expr()
        alias = None
        if self._accept(KEYWORD, "AS"):
            alias = self._ident()
        elif self._peek().kind == IDENT:
            alias = self._ident()
        return self._at(ast.SelectItem(expr=expr, alias=alias), start)

    def _order_item(self) -> ast.OrderItem:
        start = self._peek()
        expr = self._expr()
        descending = False
        if self._accept(KEYWORD, "DESC"):
            descending = True
        else:
            self._accept(KEYWORD, "ASC")
        return self._at(ast.OrderItem(expr=expr, descending=descending),
                        start)

    def _from_clause(self):
        node: object = self._table_ref()
        while True:
            if self._accept(OPERATOR, ","):
                right = self._table_ref()
                node = ast.Join(left=node, right=right, condition=None)
                continue
            cross = self._accept(KEYWORD, "CROSS")
            inner = self._accept(KEYWORD, "INNER") if not cross else None
            left = self._accept(KEYWORD, "LEFT") if not (cross or inner) else None
            if left:
                raise ParseError("LEFT JOIN is not supported",
                                 self._peek().position)
            if cross or inner or self._peek().matches(KEYWORD, "JOIN"):
                self._expect(KEYWORD, "JOIN")
                right = self._table_ref()
                condition = None
                if self._accept(KEYWORD, "ON"):
                    condition = self._expr()
                node = ast.Join(left=node, right=right, condition=condition)
                continue
            return node

    def _table_ref(self) -> ast.TableRef:
        start = self._peek()
        name = self._ident()
        alias = None
        if self._accept(KEYWORD, "AS"):
            alias = self._ident()
        elif self._peek().kind == IDENT:
            alias = self._ident()
        return self._at(ast.TableRef(name=name, alias=alias), start)

    # -- INSERT / DELETE / UPDATE ------------------------------------------------

    def _insert(self) -> ast.Insert:
        self._expect(KEYWORD, "INSERT")
        self._expect(KEYWORD, "INTO")
        table = self._ident()
        columns: List[str] = []
        if self._accept(OPERATOR, "("):
            columns.append(self._ident())
            while self._accept(OPERATOR, ","):
                columns.append(self._ident())
            self._expect(OPERATOR, ")")
        if self._accept(KEYWORD, "VALUES"):
            rows: List[List[ast.Expr]] = []
            while True:
                self._expect(OPERATOR, "(")
                row = [self._expr()]
                while self._accept(OPERATOR, ","):
                    row.append(self._expr())
                self._expect(OPERATOR, ")")
                rows.append(row)
                if not self._accept(OPERATOR, ","):
                    break
            return ast.Insert(table=table, columns=columns, rows=rows)
        if self._peek().matches(KEYWORD, "SELECT"):
            select = self._select()
            return ast.Insert(table=table, columns=columns, select=select)
        raise ParseError("expected VALUES or SELECT in INSERT",
                         self._peek().position)

    def _delete(self) -> ast.Delete:
        self._expect(KEYWORD, "DELETE")
        self._expect(KEYWORD, "FROM")
        table = self._ident()
        where = self._expr() if self._accept(KEYWORD, "WHERE") else None
        return ast.Delete(table=table, where=where)

    def _update(self) -> ast.Update:
        self._expect(KEYWORD, "UPDATE")
        table = self._ident()
        self._expect(KEYWORD, "SET")
        assignments: List[Tuple[str, ast.Expr]] = []
        while True:
            column = self._ident()
            self._expect(OPERATOR, "=")
            assignments.append((column, self._expr()))
            if not self._accept(OPERATOR, ","):
                break
        where = self._expr() if self._accept(KEYWORD, "WHERE") else None
        return ast.Update(table=table, assignments=assignments, where=where)

    # -- CREATE / DROP ---------------------------------------------------------

    def _create(self) -> ast.Statement:
        self._expect(KEYWORD, "CREATE")
        temporary = bool(self._accept(KEYWORD, "TEMP")
                         or self._accept(KEYWORD, "TEMPORARY"))
        unique = bool(self._accept(KEYWORD, "UNIQUE"))
        if self._accept(KEYWORD, "TABLE"):
            if unique:
                raise ParseError("UNIQUE applies to indexes, not tables",
                                 self._peek().position)
            return self._create_table(temporary)
        if self._accept(KEYWORD, "INDEX"):
            if temporary:
                raise ParseError("temporary indexes are not supported",
                                 self._peek().position)
            return self._create_index(unique)
        if self._accept(KEYWORD, "MATERIALIZED"):
            if temporary or unique:
                raise ParseError(
                    "TEMP/UNIQUE do not apply to materialized views",
                    self._peek().position)
            self._expect(KEYWORD, "VIEW")
            return self._create_materialized_view()
        raise ParseError(
            "expected TABLE, INDEX or MATERIALIZED VIEW after CREATE",
            self._peek().position)

    def _if_not_exists(self) -> bool:
        if self._accept(KEYWORD, "IF"):
            self._expect(KEYWORD, "NOT")
            self._expect(KEYWORD, "EXISTS")
            return True
        return False

    def _create_table(self, temporary: bool) -> ast.CreateTable:
        if_not_exists = self._if_not_exists()
        name = self._ident()
        if self._accept(KEYWORD, "AS"):
            select = self._select()
            return ast.CreateTable(
                name=name, columns=[], temporary=temporary,
                if_not_exists=if_not_exists, as_select=select,
            )
        self._expect(OPERATOR, "(")
        columns: List[ast.ColumnDef] = []
        primary_key: List[str] = []
        while True:
            if self._peek().matches(KEYWORD, "PRIMARY"):
                self._next()
                self._expect(KEYWORD, "KEY")
                self._expect(OPERATOR, "(")
                primary_key.append(self._ident())
                while self._accept(OPERATOR, ","):
                    primary_key.append(self._ident())
                self._expect(OPERATOR, ")")
            else:
                columns.append(self._column_def(primary_key))
            if not self._accept(OPERATOR, ","):
                break
        self._expect(OPERATOR, ")")
        return ast.CreateTable(
            name=name, columns=columns, temporary=temporary,
            if_not_exists=if_not_exists, primary_key=primary_key,
        )

    def _column_def(self, primary_key_out: List[str]) -> ast.ColumnDef:
        name = self._ident()
        type_name = ""  # no affinity unless declared (SQLite-like)
        tok = self._peek()
        if tok.kind == KEYWORD and tok.value in _TYPE_KEYWORDS:
            self._next()
            type_name = str(tok.value)
        elif tok.kind == IDENT and str(tok.value).upper() in _TYPE_KEYWORDS:
            self._next()
            type_name = str(tok.value).upper()
        column = ast.ColumnDef(name=name, type_name=type_name)
        while True:
            if self._accept(KEYWORD, "PRIMARY"):
                self._expect(KEYWORD, "KEY")
                column.primary_key = True
                primary_key_out.append(name)
            elif self._accept(KEYWORD, "NOT"):
                self._expect(KEYWORD, "NULL")
                column.not_null = True
            elif self._accept(KEYWORD, "DEFAULT"):
                column.default = self._primary()
            elif self._accept(KEYWORD, "UNIQUE"):
                pass  # tolerated; uniqueness enforced only via PK/indexes
            else:
                return column

    def _create_index(self, unique: bool) -> ast.CreateIndex:
        if_not_exists = self._if_not_exists()
        name = self._ident()
        self._expect(KEYWORD, "ON")
        table = self._ident()
        self._expect(OPERATOR, "(")
        columns = [self._ident()]
        while self._accept(OPERATOR, ","):
            columns.append(self._ident())
        self._expect(OPERATOR, ")")
        return ast.CreateIndex(
            name=name, table=table, columns=columns, unique=unique,
            if_not_exists=if_not_exists,
        )

    def _create_materialized_view(self) -> ast.CreateMaterializedView:
        if_not_exists = self._if_not_exists()
        name = self._ident()
        self._expect(KEYWORD, "AS")
        mechanism = self._ident()
        self._expect(OPERATOR, "(")
        qq = self._string_literal("the defining Qq query")
        arg = None
        if self._accept(OPERATOR, ","):
            arg = self._string_literal("the aggregate argument")
        self._expect(OPERATOR, ")")
        return ast.CreateMaterializedView(
            name=name, mechanism=mechanism, qq=qq, arg=arg,
            if_not_exists=if_not_exists,
        )

    def _string_literal(self, what: str) -> str:
        tok = self._peek()
        if tok.kind != STRING:
            raise ParseError(
                f"expected a string literal for {what}, "
                f"found {tok.value!r}", tok.position)
        self._next()
        return str(tok.value)

    def _refresh(self) -> ast.RefreshMaterializedView:
        self._expect(KEYWORD, "REFRESH")
        self._expect(KEYWORD, "MATERIALIZED")
        self._expect(KEYWORD, "VIEW")
        name = self._ident()
        full = False
        tok = self._peek()
        if tok.kind == IDENT and str(tok.value).upper() == "FULL":
            self._next()
            full = True
        return ast.RefreshMaterializedView(name=name, full=full)

    def _drop(self) -> ast.Statement:
        self._expect(KEYWORD, "DROP")
        if self._accept(KEYWORD, "TABLE"):
            if_exists = self._if_exists()
            return ast.DropTable(name=self._ident(), if_exists=if_exists)
        if self._accept(KEYWORD, "INDEX"):
            if_exists = self._if_exists()
            return ast.DropIndex(name=self._ident(), if_exists=if_exists)
        if self._accept(KEYWORD, "MATERIALIZED"):
            self._expect(KEYWORD, "VIEW")
            if_exists = self._if_exists()
            return ast.DropMaterializedView(
                name=self._ident(), if_exists=if_exists)
        raise ParseError(
            "expected TABLE, INDEX or MATERIALIZED VIEW after DROP",
            self._peek().position)

    def _if_exists(self) -> bool:
        if self._accept(KEYWORD, "IF"):
            self._expect(KEYWORD, "EXISTS")
            return True
        return False

    # -- expressions (precedence climbing) ------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while True:
            tok = self._accept(KEYWORD, "OR")
            if tok is None:
                return left
            left = self._at(ast.BinaryOp("OR", left, self._and_expr()), tok)

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while True:
            tok = self._accept(KEYWORD, "AND")
            if tok is None:
                return left
            left = self._at(ast.BinaryOp("AND", left, self._not_expr()), tok)

    def _not_expr(self) -> ast.Expr:
        tok = self._accept(KEYWORD, "NOT")
        if tok is not None:
            return self._at(ast.UnaryOp("NOT", self._not_expr()), tok)
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        while True:
            tok = self._peek()
            if tok.kind == OPERATOR and tok.value in _COMPARISONS:
                self._next()
                op = "=" if tok.value == "==" else str(tok.value)
                op = "!=" if op == "<>" else op
                left = self._at(ast.BinaryOp(op, left, self._additive()),
                                tok)
                continue
            if tok.matches(KEYWORD, "IS"):
                self._next()
                negated = bool(self._accept(KEYWORD, "NOT"))
                self._expect(KEYWORD, "NULL")
                left = self._at(ast.IsNull(left, negated=negated), tok)
                continue
            negated = False
            if tok.matches(KEYWORD, "NOT") and self._peek(1).value in (
                    "IN", "BETWEEN", "LIKE"):
                self._next()
                negated = True
                tok = self._peek()
            if tok.matches(KEYWORD, "IN"):
                self._next()
                self._expect(OPERATOR, "(")
                items = [self._expr()]
                while self._accept(OPERATOR, ","):
                    items.append(self._expr())
                self._expect(OPERATOR, ")")
                left = self._at(ast.InList(left, items, negated=negated),
                                tok)
                continue
            if tok.matches(KEYWORD, "BETWEEN"):
                self._next()
                low = self._additive()
                self._expect(KEYWORD, "AND")
                high = self._additive()
                left = self._at(
                    ast.Between(left, low, high, negated=negated), tok)
                continue
            if tok.matches(KEYWORD, "LIKE"):
                self._next()
                pattern = self._additive()
                left = self._at(ast.Like(left, pattern, negated=negated),
                                tok)
                continue
            return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            tok = self._peek()
            if tok.kind == OPERATOR and tok.value in ("+", "-", "||"):
                self._next()
                left = self._at(
                    ast.BinaryOp(str(tok.value), left,
                                 self._multiplicative()), tok)
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            tok = self._peek()
            if tok.kind == OPERATOR and tok.value in ("*", "/", "%"):
                self._next()
                left = self._at(
                    ast.BinaryOp(str(tok.value), left, self._unary()), tok)
            else:
                return left

    def _unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == OPERATOR and tok.value in ("-", "+"):
            self._next()
            return self._at(ast.UnaryOp(str(tok.value), self._unary()), tok)
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind in (INTEGER, FLOAT, STRING, BLOB):
            self._next()
            return self._at(ast.Literal(tok.value), tok)
        if tok.matches(KEYWORD, "NULL"):
            self._next()
            return self._at(ast.Literal(None), tok)
        if tok.matches(KEYWORD, "CASE"):
            return self._case()
        if tok.kind == OPERATOR and tok.value == "(":
            self._next()
            expr = self._expr()
            self._expect(OPERATOR, ")")
            return expr
        # Aggregate keywords used as function names.
        if tok.kind == KEYWORD and tok.value in (
                "COUNT", "SUM", "MIN", "MAX", "AVG", "DATE"):
            if self._peek(1).matches(OPERATOR, "("):
                name = str(self._next().value)
                return self._at(self._function_call(name), tok)
        if tok.kind == IDENT:
            if self._peek(1).matches(OPERATOR, "("):
                name = self._ident()
                return self._at(self._function_call(name), tok)
            name = self._ident()
            if self._accept(OPERATOR, "."):
                column = self._ident()
                return self._at(ast.ColumnRef(table=name, name=column), tok)
            return self._at(ast.ColumnRef(table=None, name=name), tok)
        raise ParseError(f"unexpected token {tok.value!r} in expression",
                         tok.position)

    def _function_call(self, name: str) -> ast.Expr:
        self._expect(OPERATOR, "(")
        if self._accept(OPERATOR, "*"):
            self._expect(OPERATOR, ")")
            return ast.FunctionCall(name=name, args=[], star=True)
        if self._accept(OPERATOR, ")"):
            return ast.FunctionCall(name=name, args=[])
        distinct = bool(self._accept(KEYWORD, "DISTINCT"))
        args = [self._expr()]
        while self._accept(OPERATOR, ","):
            args.append(self._expr())
        self._expect(OPERATOR, ")")
        return ast.FunctionCall(name=name, args=args, distinct=distinct)

    def _case(self) -> ast.Expr:
        case_tok = self._expect(KEYWORD, "CASE")
        operand = None
        if not self._peek().matches(KEYWORD, "WHEN"):
            operand = self._expr()
        branches: List[Tuple[ast.Expr, ast.Expr]] = []
        while self._accept(KEYWORD, "WHEN"):
            condition = self._expr()
            self._expect(KEYWORD, "THEN")
            result = self._expr()
            branches.append((condition, result))
        else_result = None
        if self._accept(KEYWORD, "ELSE"):
            else_result = self._expr()
        self._expect(KEYWORD, "END")
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch",
                             self._peek().position)
        return self._at(ast.CaseExpr(operand=operand, branches=branches,
                                     else_result=else_result), case_tok)
