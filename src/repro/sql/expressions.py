"""Expression compilation.

AST expression nodes are compiled once per statement into Python closures
``row -> value`` (a row is a flat tuple of SQL values).  Column references
are resolved to positions through a :class:`Scope`; aggregate results and
group keys resolve through the synthetic :class:`PostAggRef` node the
planner substitutes in.

All operators implement SQL three-valued logic: comparisons with NULL
yield NULL, ``AND``/``OR`` follow Kleene logic, arithmetic with NULL
yields NULL.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanError, TypeMismatchError
from repro.sql import ast
from repro.sql.types import SqlValue, compare, is_true, to_number

Evaluator = Callable[[Sequence[SqlValue]], SqlValue]


@dataclass
class PostAggRef(ast.Expr):
    """Planner-internal: reference into the aggregated row."""

    position: int
    display: str = ""


class Scope:
    """Maps (qualifier, column) to row positions.

    ``bindings`` is an ordered list of (binding_name, column_name); the
    position of an entry is its index in the joined row tuple.
    """

    def __init__(self, bindings: List[Tuple[str, str]]) -> None:
        self.bindings = bindings
        self._by_qualified: Dict[Tuple[str, str], int] = {}
        self._by_name: Dict[str, List[int]] = {}
        for pos, (binding, column) in enumerate(bindings):
            self._by_qualified[(binding.lower(), column.lower())] = pos
            self._by_name.setdefault(column.lower(), []).append(pos)

    def resolve(self, ref: ast.ColumnRef) -> int:
        if ref.table is not None:
            key = (ref.table.lower(), ref.name.lower())
            if key not in self._by_qualified:
                raise PlanError(f"no such column: {ref.display()}")
            return self._by_qualified[key]
        positions = self._by_name.get(ref.name.lower(), [])
        if not positions:
            raise PlanError(f"no such column: {ref.name}")
        if len(positions) > 1:
            raise PlanError(f"ambiguous column name: {ref.name}")
        return positions[0]

    def try_resolve(self, ref: ast.ColumnRef) -> Optional[int]:
        try:
            return self.resolve(ref)
        except PlanError:
            return None

    def is_ambiguous(self, ref: ast.ColumnRef) -> bool:
        """True when an unqualified ref matches columns of two bindings."""
        return (ref.table is None
                and len(self._by_name.get(ref.name.lower(), [])) > 1)

    def positions_for_binding(self, binding: str) -> List[int]:
        lowered = binding.lower()
        return [pos for pos, (b, _) in enumerate(self.bindings)
                if b.lower() == lowered]

    def __len__(self) -> int:
        return len(self.bindings)


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (%, _) to a compiled regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


class ExpressionCompiler:
    """Compiles AST expressions against a scope + function registry."""

    def __init__(self, scope: Scope,
                 functions: Optional[Dict[str, Callable[..., SqlValue]]] = None) -> None:
        self.scope = scope
        self.functions = functions or {}

    def compile(self, expr: ast.Expr) -> Evaluator:
        method = getattr(self, "_compile_" + type(expr).__name__.lower(),
                         None)
        if method is None:
            raise PlanError(
                f"unsupported expression node {type(expr).__name__}"
            )
        return method(expr)

    # -- leaves -----------------------------------------------------------

    def _compile_literal(self, expr: ast.Literal) -> Evaluator:
        value = expr.value
        return lambda row: value

    def _compile_columnref(self, expr: ast.ColumnRef) -> Evaluator:
        position = self.scope.resolve(expr)
        return lambda row: row[position]

    def _compile_postaggref(self, expr: PostAggRef) -> Evaluator:
        position = expr.position
        return lambda row: row[position]

    # -- unary -----------------------------------------------------------

    def _compile_unaryop(self, expr: ast.UnaryOp) -> Evaluator:
        operand = self.compile(expr.operand)
        if expr.op == "NOT":
            def not_eval(row: Sequence[SqlValue]) -> SqlValue:
                value = operand(row)
                if value is None:
                    return None
                return 0 if is_true(value) else 1
            return not_eval
        if expr.op == "-":
            def neg_eval(row: Sequence[SqlValue]) -> SqlValue:
                value = to_number(operand(row))
                return None if value is None else -value
            return neg_eval
        if expr.op == "+":
            def pos_eval(row: Sequence[SqlValue]) -> SqlValue:
                return to_number(operand(row))
            return pos_eval
        raise PlanError(f"unknown unary operator {expr.op}")

    # -- binary -----------------------------------------------------------

    def _compile_binaryop(self, expr: ast.BinaryOp) -> Evaluator:
        op = expr.op
        if op == "AND":
            left, right = self.compile(expr.left), self.compile(expr.right)

            def and_eval(row: Sequence[SqlValue]) -> SqlValue:
                lv = left(row)
                if lv is not None and not is_true(lv):
                    return 0
                rv = right(row)
                if rv is not None and not is_true(rv):
                    return 0
                if lv is None or rv is None:
                    return None
                return 1
            return and_eval
        if op == "OR":
            left, right = self.compile(expr.left), self.compile(expr.right)

            def or_eval(row: Sequence[SqlValue]) -> SqlValue:
                lv = left(row)
                if lv is not None and is_true(lv):
                    return 1
                rv = right(row)
                if rv is not None and is_true(rv):
                    return 1
                if lv is None or rv is None:
                    return None
                return 0
            return or_eval
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return self._compile_comparison(expr)
        if op == "||":
            left, right = self.compile(expr.left), self.compile(expr.right)

            def concat_eval(row: Sequence[SqlValue]) -> SqlValue:
                lv, rv = left(row), right(row)
                if lv is None or rv is None:
                    return None
                return _to_text(lv) + _to_text(rv)
            return concat_eval
        if op in ("+", "-", "*", "/", "%"):
            return self._compile_arithmetic(expr)
        raise PlanError(f"unknown binary operator {op}")

    def _compile_comparison(self, expr: ast.BinaryOp) -> Evaluator:
        left, right = self.compile(expr.left), self.compile(expr.right)
        op = expr.op

        def cmp_eval(row: Sequence[SqlValue]) -> SqlValue:
            result = compare(left(row), right(row))
            if result is None:
                return None
            if op == "=":
                return 1 if result == 0 else 0
            if op == "!=":
                return 1 if result != 0 else 0
            if op == "<":
                return 1 if result < 0 else 0
            if op == "<=":
                return 1 if result <= 0 else 0
            if op == ">":
                return 1 if result > 0 else 0
            return 1 if result >= 0 else 0
        return cmp_eval

    def _compile_arithmetic(self, expr: ast.BinaryOp) -> Evaluator:
        left, right = self.compile(expr.left), self.compile(expr.right)
        op = expr.op

        def arith_eval(row: Sequence[SqlValue]) -> SqlValue:
            lv, rv = to_number(left(row)), to_number(right(row))
            if lv is None or rv is None:
                return None
            if op == "+":
                return lv + rv
            if op == "-":
                return lv - rv
            if op == "*":
                return lv * rv
            if op == "/":
                if rv == 0:
                    return None  # SQLite yields NULL on divide-by-zero
                if isinstance(lv, int) and isinstance(rv, int):
                    # SQLite integer division truncates toward zero.
                    quotient = abs(lv) // abs(rv)
                    return quotient if (lv < 0) == (rv < 0) else -quotient
                return lv / rv
            if rv == 0:
                return None
            return lv % rv
        return arith_eval

    # -- predicates ------------------------------------------------------------

    def _compile_isnull(self, expr: ast.IsNull) -> Evaluator:
        operand = self.compile(expr.operand)
        negated = expr.negated

        def isnull_eval(row: Sequence[SqlValue]) -> SqlValue:
            is_null = operand(row) is None
            return 1 if (is_null != negated) else 0
        return isnull_eval

    def _compile_inlist(self, expr: ast.InList) -> Evaluator:
        operand = self.compile(expr.operand)
        items = [self.compile(item) for item in expr.items]
        negated = expr.negated

        def in_eval(row: Sequence[SqlValue]) -> SqlValue:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item in items:
                iv = item(row)
                if iv is None:
                    saw_null = True
                    continue
                if compare(value, iv) == 0:
                    return 0 if negated else 1
            if saw_null:
                return None
            return 1 if negated else 0
        return in_eval

    def _compile_between(self, expr: ast.Between) -> Evaluator:
        operand = self.compile(expr.operand)
        low, high = self.compile(expr.low), self.compile(expr.high)
        negated = expr.negated

        def between_eval(row: Sequence[SqlValue]) -> SqlValue:
            value = operand(row)
            lo, hi = low(row), high(row)
            c1 = compare(value, lo)
            c2 = compare(value, hi)
            if c1 is None or c2 is None:
                return None
            result = c1 >= 0 and c2 <= 0
            return 1 if (result != negated) else 0
        return between_eval

    def _compile_like(self, expr: ast.Like) -> Evaluator:
        operand = self.compile(expr.operand)
        pattern = self.compile(expr.pattern)
        negated = expr.negated
        cache: Dict[str, "re.Pattern[str]"] = {}

        def like_eval(row: Sequence[SqlValue]) -> SqlValue:
            value = operand(row)
            pat = pattern(row)
            if value is None or pat is None:
                return None
            text = _to_text(value)
            pat_text = _to_text(pat)
            regex = cache.get(pat_text)
            if regex is None:
                regex = like_to_regex(pat_text)
                cache[pat_text] = regex
            matched = regex.match(text) is not None
            return 1 if (matched != negated) else 0
        return like_eval

    # -- functions / CASE -----------------------------------------------------------

    def _compile_functioncall(self, expr: ast.FunctionCall) -> Evaluator:
        name = expr.name.lower()
        fn = self.functions.get(name)
        if fn is None:
            if expr.is_aggregate_name():
                raise PlanError(
                    f"aggregate {expr.name}() used outside GROUP BY context"
                )
            raise PlanError(f"no such function: {expr.name}")
        args = [self.compile(a) for a in expr.args]

        def call_eval(row: Sequence[SqlValue]) -> SqlValue:
            return fn(*[a(row) for a in args])
        return call_eval

    def _compile_caseexpr(self, expr: ast.CaseExpr) -> Evaluator:
        operand = self.compile(expr.operand) if expr.operand else None
        branches = [(self.compile(c), self.compile(r))
                    for c, r in expr.branches]
        else_result = (self.compile(expr.else_result)
                       if expr.else_result else None)

        def case_eval(row: Sequence[SqlValue]) -> SqlValue:
            if operand is not None:
                target = operand(row)
                for condition, result in branches:
                    if compare(target, condition(row)) == 0:
                        return result(row)
            else:
                for condition, result in branches:
                    if is_true(condition(row)):
                        return result(row)
            return else_result(row) if else_result else None
        return case_eval


def _to_text(value: SqlValue) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bytes):
        raise TypeMismatchError("cannot use a blob as text")
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


# ---------------------------------------------------------------------------
# AST utilities shared with the planner
# ---------------------------------------------------------------------------

def walk(expr: ast.Expr):
    """Yield every node of an expression tree (pre-order)."""
    yield expr
    if isinstance(expr, ast.UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, ast.BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, ast.IsNull):
        yield from walk(expr.operand)
    elif isinstance(expr, ast.InList):
        yield from walk(expr.operand)
        for item in expr.items:
            yield from walk(item)
    elif isinstance(expr, ast.Between):
        yield from walk(expr.operand)
        yield from walk(expr.low)
        yield from walk(expr.high)
    elif isinstance(expr, ast.Like):
        yield from walk(expr.operand)
        yield from walk(expr.pattern)
    elif isinstance(expr, ast.FunctionCall):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, ast.CaseExpr):
        if expr.operand:
            yield from walk(expr.operand)
        for condition, result in expr.branches:
            yield from walk(condition)
            yield from walk(result)
        if expr.else_result:
            yield from walk(expr.else_result)


def contains_aggregate(expr: ast.Expr) -> bool:
    return any(
        isinstance(node, ast.FunctionCall) and node.is_aggregate_name()
        for node in walk(expr)
    )


def conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Split a predicate into AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]
