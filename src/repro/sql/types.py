"""The SQL value model.

Values are Python ``None`` (NULL), ``int``, ``float``, ``str`` and
``bytes`` — the SQLite storage classes.  This module centralizes the
semantics every operator shares:

* three-valued comparison logic (any comparison with NULL is NULL);
* cross-class ordering for ORDER BY / MIN / MAX
  (NULL < numbers < text < blob, matching the key codec in
  :mod:`repro.storage.record`);
* numeric coercion for arithmetic;
* truthiness for WHERE/HAVING (NULL and 0 are not true).

Dates are ISO-8601 strings ('YYYY-MM-DD'), whose lexicographic order is
chronological — the same convention TPC-H text data uses here.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Tuple

from repro.errors import TypeMismatchError

SqlValue = Any  # None | int | float | str | bytes

#: Declared column type names accepted by the parser.
COLUMN_TYPES = ("INTEGER", "REAL", "TEXT", "BLOB", "DATE", "NUMERIC")


def type_class(value: SqlValue) -> int:
    """Cross-class collation rank (NULL=0, numeric=1, text=2, blob=3)."""
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 1
    if isinstance(value, str):
        return 2
    if isinstance(value, (bytes, bytearray)):
        return 3
    raise TypeMismatchError(f"not a SQL value: {type(value).__name__}")


def compare(left: SqlValue, right: SqlValue) -> Optional[int]:
    """Three-valued comparison: -1/0/1, or None when either side is NULL."""
    if left is None or right is None:
        return None
    lc, rc = type_class(left), type_class(right)
    if lc != rc:
        return -1 if lc < rc else 1
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def sort_key(value: SqlValue) -> Tuple[int, SqlValue]:
    """Total-order key for sorting mixed-class values (NULLs first)."""
    rank = type_class(value)
    if value is None:
        return (0, 0)
    return (rank, value)


def row_sort_key(values: Iterable[SqlValue]) -> Tuple[Tuple[int, SqlValue], ...]:
    return tuple(sort_key(v) for v in values)


def is_true(value: SqlValue) -> bool:
    """SQL truthiness: NULL and zero are not true."""
    if value is None:
        return False
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        # SQLite coerces; we accept numeric strings, else false.
        try:
            return float(value) != 0
        except ValueError:
            return False
    return bool(value)


def to_number(value: SqlValue) -> Optional[float]:
    """Coerce to a number for arithmetic; NULL stays NULL."""
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            if "." in value or "e" in value or "E" in value:
                return float(value)
            return int(value)
        except ValueError as exc:
            raise TypeMismatchError(
                f"cannot use {value!r} as a number"
            ) from exc
    raise TypeMismatchError(
        f"cannot use {type(value).__name__} as a number"
    )


def coerce_for_column(value: SqlValue, declared: str) -> SqlValue:
    """Apply column-affinity coercion on INSERT/UPDATE (SQLite style)."""
    if value is None:
        return None
    declared = declared.upper()
    if declared == "INTEGER":
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                return value
        return value
    if declared in ("REAL", "NUMERIC"):
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, int):
            return float(value) if declared == "REAL" else value
        if isinstance(value, float):
            return value
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                return value
        return value
    if declared in ("TEXT", "DATE"):
        if isinstance(value, (int, float)):
            return str(value)
        return value
    return value


def value_repr(value: SqlValue) -> str:
    """Render a value the way result tables print it."""
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, bytes):
        return "x'" + value.hex() + "'"
    return str(value)
