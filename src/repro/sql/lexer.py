"""SQL tokenizer.

Produces a flat list of :class:`Token` objects; the parser consumes them
with one-token lookahead.  Keywords are case-insensitive and reported
uppercased; identifiers keep their original spelling (lookups are
case-insensitive at the catalog level).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import LexerError

# Token kinds
KEYWORD = "KEYWORD"
IDENT = "IDENT"
INTEGER = "INTEGER"
FLOAT = "FLOAT"
STRING = "STRING"
BLOB = "BLOB"
OPERATOR = "OPERATOR"
PARAM = "PARAM"
EOF = "EOF"

KEYWORDS = frozenset("""
    ABORT ALL ANALYZE AND AS ASC ASOF AVG BEGIN BETWEEN BLOB BY CASE COMMIT COUNT
    CREATE CROSS DATE DEFAULT DELETE DESC DISTINCT DROP ELSE END ESCAPE EXPLAIN
    EXISTS FROM GROUP HAVING IF IN INDEX INNER INSERT INTEGER INTO IS JOIN
    KEY LEFT LIKE LIMIT MATERIALIZED MAX MIN NOT NULL NUMERIC OF OFFSET
    ON OR ORDER PRIMARY REAL REFRESH ROLLBACK SELECT SET SNAPSHOT SUM
    TABLE TEMP TEMPORARY TEXT THEN TRANSACTION UNIQUE UPDATE VALUES VIEW
    WHEN WHERE WITH
""".split())

_OPERATORS = (
    "<>", "<=", ">=", "!=", "||", "=", "<", ">", "+", "-", "*", "/", "%",
    "(", ")", ",", ".", ";",
)


@dataclass
class Token:
    kind: str
    value: object
    position: int
    line: int = 0
    col: int = 0

    def matches(self, kind: str, value: Optional[str] = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; raises LexerError on unrecognized input."""
    tokens: List[Token] = []
    pos = 0
    n = len(sql)
    while pos < n:
        ch = sql[pos]
        if ch.isspace():
            pos += 1
            continue
        if sql.startswith("--", pos):
            end = sql.find("\n", pos)
            pos = n if end < 0 else end + 1
            continue
        if sql.startswith("/*", pos):
            end = sql.find("*/", pos + 2)
            if end < 0:
                raise LexerError("unterminated block comment", pos)
            pos = end + 2
            continue
        if ch == "'":
            start = pos
            value, pos = _read_string(sql, pos)
            tokens.append(Token(STRING, value, start))
            continue
        if ch == '"':
            start = pos
            value, pos = _read_quoted_ident(sql, pos)
            tokens.append(Token(IDENT, value, start))
            continue
        if ch in "xX" and pos + 1 < n and sql[pos + 1] == "'":
            start = pos
            value, pos = _read_blob(sql, pos)
            tokens.append(Token(BLOB, value, start))
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < n and sql[pos + 1].isdigit()):
            tok, pos = _read_number(sql, pos)
            tokens.append(tok)
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (sql[pos].isalnum() or sql[pos] == "_"):
                pos += 1
            word = sql[start:pos]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, start))
            else:
                tokens.append(Token(IDENT, word, start))
            continue
        if ch == "?":
            tokens.append(Token(PARAM, "?", pos))
            pos += 1
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, pos):
                tokens.append(Token(OPERATOR, op, pos))
                pos += len(op)
                matched = True
                break
        if not matched:
            raise LexerError(f"unexpected character {ch!r}", pos)
    tokens.append(Token(EOF, None, n))
    _assign_positions(sql, tokens)
    return tokens


def _assign_positions(sql: str, tokens: List[Token]) -> None:
    """Fill in 1-based line/col on every token from its byte offset."""
    line_starts = [0]
    for offset, ch in enumerate(sql):
        if ch == "\n":
            line_starts.append(offset + 1)
    for token in tokens:
        at = bisect_right(line_starts, token.position) - 1
        token.line = at + 1
        token.col = token.position - line_starts[at] + 1


def _read_string(sql: str, pos: int) -> tuple:
    """Single-quoted string with '' escaping."""
    out: List[str] = []
    pos += 1
    n = len(sql)
    while pos < n:
        ch = sql[pos]
        if ch == "'":
            if pos + 1 < n and sql[pos + 1] == "'":
                out.append("'")
                pos += 2
                continue
            return "".join(out), pos + 1
        out.append(ch)
        pos += 1
    raise LexerError("unterminated string literal", pos)


def _read_quoted_ident(sql: str, pos: int) -> tuple:
    end = sql.find('"', pos + 1)
    if end < 0:
        raise LexerError("unterminated quoted identifier", pos)
    return sql[pos + 1:end], end + 1


def _read_blob(sql: str, pos: int) -> tuple:
    end = sql.find("'", pos + 2)
    if end < 0:
        raise LexerError("unterminated blob literal", pos)
    hex_digits = sql[pos + 2:end]
    try:
        return bytes.fromhex(hex_digits), end + 1
    except ValueError as exc:
        raise LexerError(f"bad blob literal: {exc}", pos) from exc


def _read_number(sql: str, pos: int) -> tuple:
    start = pos
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while pos < n:
        ch = sql[pos]
        if ch.isdigit():
            pos += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            pos += 1
        elif ch in "eE" and not seen_exp and pos > start:
            nxt = sql[pos + 1] if pos + 1 < n else ""
            if nxt.isdigit() or (nxt in "+-" and pos + 2 < n
                                 and sql[pos + 2].isdigit()):
                seen_exp = True
                pos += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    text = sql[start:pos]
    if seen_dot or seen_exp:
        return Token(FLOAT, float(text), start), pos
    return Token(INTEGER, int(text), start), pos
