"""The system catalog.

Tables and indexes are described by rows in a dedicated catalog B+tree
whose root page id is pinned in the pager meta.  Because the catalog
lives in ordinary pages, it is captured by Retro snapshots like any other
data: an ``AS OF`` query resolves schema *as of the snapshot*, so indexes
created later are invisible and dropped tables are still there — exactly
the behaviour the paper relies on (a snapshot "includes the state of the
entire database (e.g., tables, indexes, system catalogs)").

Catalog rows (record-codec encoded):

* key ``("T", lowercase_name)`` ->
  ``(name, root_id, "col1,col2", "TYPE1,TYPE2", "pkcol1,pkcol2")``
* key ``("I", lowercase_name)`` ->
  ``(name, table_name, root_id, unique_flag, "col1,col2")``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import CatalogError
from repro.storage.btree import BTree
from repro.storage.record import decode_record, encode_key, encode_record

_SEP = "\x1f"


@dataclass(frozen=True)
class Column:
    name: str
    type_name: str


@dataclass
class TableInfo:
    name: str
    root_id: int
    columns: List[Column]
    primary_key: List[str] = field(default_factory=list)
    #: True when the table lives in the auxiliary (non-snapshotable) DB.
    temporary: bool = False

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return i
        raise CatalogError(f"table {self.name} has no column {name}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name.lower() == lowered for c in self.columns)


@dataclass
class IndexInfo:
    name: str
    table: str
    root_id: int
    columns: List[str]
    unique: bool = False
    temporary: bool = False


class Catalog:
    """Catalog accessor bound to one page source (current or snapshot)."""

    def __init__(self, source, root_id: int) -> None:
        self._tree = BTree(source, root_id)

    # -- keys -----------------------------------------------------------

    @staticmethod
    def _table_key(name: str) -> bytes:
        return encode_key(("T", name.lower()))

    @staticmethod
    def _index_key(name: str) -> bytes:
        return encode_key(("I", name.lower()))

    # -- tables -----------------------------------------------------------

    def create_table(self, info: TableInfo) -> None:
        key = self._table_key(info.name)
        if self._tree.get(key) is not None:
            raise CatalogError(f"table {info.name} already exists")
        value = encode_record((
            info.name,
            info.root_id,
            _SEP.join(c.name for c in info.columns),
            _SEP.join(c.type_name for c in info.columns),
            _SEP.join(info.primary_key),
        ))
        self._tree.insert(key, value)

    def drop_table(self, name: str) -> TableInfo:
        info = self.get_table(name)
        if info is None:
            raise CatalogError(f"no such table: {name}")
        self._tree.delete(self._table_key(name))
        return info

    def get_table(self, name: str) -> Optional[TableInfo]:
        raw = self._tree.get(self._table_key(name))
        if raw is None:
            return None
        return self._decode_table(raw)

    def list_tables(self) -> List[TableInfo]:
        prefix = encode_key(("T",))
        return [self._decode_table(v)
                for _, v in self._tree.scan_prefix(prefix)]

    @staticmethod
    def _decode_table(raw: bytes) -> TableInfo:
        name, root_id, cols, types, pk = decode_record(raw)
        col_names = str(cols).split(_SEP) if cols else []
        # Types may all be empty strings (no affinity); split by column
        # count, never by truthiness of the joined string.
        col_types = str(types).split(_SEP) if col_names else []
        while len(col_types) < len(col_names):
            col_types.append("")
        columns = [Column(n, t) for n, t in zip(col_names, col_types)]
        primary_key = str(pk).split(_SEP) if pk else []
        return TableInfo(
            name=str(name), root_id=int(root_id), columns=columns,
            primary_key=primary_key,
        )

    # -- indexes -----------------------------------------------------------

    def create_index(self, info: IndexInfo) -> None:
        key = self._index_key(info.name)
        if self._tree.get(key) is not None:
            raise CatalogError(f"index {info.name} already exists")
        value = encode_record((
            info.name,
            info.table,
            info.root_id,
            1 if info.unique else 0,
            _SEP.join(info.columns),
        ))
        self._tree.insert(key, value)

    def drop_index(self, name: str) -> IndexInfo:
        info = self.get_index(name)
        if info is None:
            raise CatalogError(f"no such index: {name}")
        self._tree.delete(self._index_key(name))
        return info

    def get_index(self, name: str) -> Optional[IndexInfo]:
        raw = self._tree.get(self._index_key(name))
        if raw is None:
            return None
        return self._decode_index(raw)

    def list_indexes(self) -> List[IndexInfo]:
        prefix = encode_key(("I",))
        return [self._decode_index(v)
                for _, v in self._tree.scan_prefix(prefix)]

    def indexes_for(self, table: str) -> List[IndexInfo]:
        lowered = table.lower()
        return [ix for ix in self.list_indexes()
                if ix.table.lower() == lowered]

    @staticmethod
    def _decode_index(raw: bytes) -> IndexInfo:
        name, table, root_id, unique, cols = decode_record(raw)
        return IndexInfo(
            name=str(name), table=str(table), root_id=int(root_id),
            columns=str(cols).split(_SEP) if cols else [],
            unique=bool(unique),
        )
