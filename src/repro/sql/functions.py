"""Built-in scalar and aggregate functions, and the UDF registry.

Scalar functions are plain callables over SQL values.  Aggregate
functions are accumulator classes driven by the GROUP BY operator.  User
defined functions (the RQL mechanisms) register through
:class:`FunctionRegistry` — mirroring SQLite's ``create_function`` API
the paper's implementation builds on.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Type

from repro.errors import UdfError
from repro.sql.types import SqlValue, compare, to_number


# ---------------------------------------------------------------------------
# Scalar built-ins
# ---------------------------------------------------------------------------

def _abs(value: SqlValue) -> SqlValue:
    number = to_number(value)
    return None if number is None else abs(number)


def _length(value: SqlValue) -> SqlValue:
    if value is None:
        return None
    if isinstance(value, (str, bytes)):
        return len(value)
    return len(str(value))


def _lower(value: SqlValue) -> SqlValue:
    return None if value is None else str(value).lower()


def _upper(value: SqlValue) -> SqlValue:
    return None if value is None else str(value).upper()


def _substr(value: SqlValue, start: SqlValue,
            length: SqlValue = None) -> SqlValue:
    if value is None or start is None:
        return None
    text = str(value)
    begin = int(start) - 1 if int(start) > 0 else max(len(text) + int(start), 0)
    if length is None:
        return text[begin:]
    return text[begin:begin + int(length)]


def _coalesce(*args: SqlValue) -> SqlValue:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(a: SqlValue, b: SqlValue) -> SqlValue:
    return None if compare(a, b) == 0 else a


def _round(value: SqlValue, digits: SqlValue = 0) -> SqlValue:
    number = to_number(value)
    if number is None:
        return None
    return round(float(number), int(digits or 0))


def _ifnull(a: SqlValue, b: SqlValue) -> SqlValue:
    return a if a is not None else b


def _min_scalar(*args: SqlValue) -> SqlValue:
    if any(a is None for a in args):
        return None
    best = args[0]
    for arg in args[1:]:
        if compare(arg, best) == -1:
            best = arg
    return best


def _max_scalar(*args: SqlValue) -> SqlValue:
    if any(a is None for a in args):
        return None
    best = args[0]
    for arg in args[1:]:
        if compare(arg, best) == 1:
            best = arg
    return best


def _sqrt(value: SqlValue) -> SqlValue:
    number = to_number(value)
    if number is None or number < 0:
        return None
    return math.sqrt(number)


BUILTIN_SCALARS: Dict[str, Callable[..., SqlValue]] = {
    "abs": _abs,
    "length": _length,
    "lower": _lower,
    "upper": _upper,
    "substr": _substr,
    "substring": _substr,
    "coalesce": _coalesce,
    "nullif": _nullif,
    "ifnull": _ifnull,
    "round": _round,
    "sqrt": _sqrt,
}


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

class Aggregate:
    """Accumulator protocol for GROUP BY aggregates."""

    def step(self, value: SqlValue) -> None:
        raise NotImplementedError

    def result(self) -> SqlValue:
        raise NotImplementedError


class CountAggregate(Aggregate):
    """COUNT(expr) — counts non-NULL inputs; COUNT(*) feeds a constant."""

    def __init__(self) -> None:
        self.count = 0

    def step(self, value: SqlValue) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> SqlValue:
        return self.count


class SumAggregate(Aggregate):
    def __init__(self) -> None:
        self.total: Optional[float] = None

    def step(self, value: SqlValue) -> None:
        if value is None:
            return
        number = to_number(value)
        self.total = number if self.total is None else self.total + number

    def result(self) -> SqlValue:
        return self.total


class AvgAggregate(Aggregate):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def step(self, value: SqlValue) -> None:
        if value is None:
            return
        self.total += float(to_number(value))
        self.count += 1

    def result(self) -> SqlValue:
        return self.total / self.count if self.count else None


class MinAggregate(Aggregate):
    def __init__(self) -> None:
        self.best: SqlValue = None

    def step(self, value: SqlValue) -> None:
        if value is None:
            return
        if self.best is None or compare(value, self.best) == -1:
            self.best = value

    def result(self) -> SqlValue:
        return self.best


class MaxAggregate(Aggregate):
    def __init__(self) -> None:
        self.best: SqlValue = None

    def step(self, value: SqlValue) -> None:
        if value is None:
            return
        if self.best is None or compare(value, self.best) == 1:
            self.best = value

    def result(self) -> SqlValue:
        return self.best


class GroupConcatAggregate(Aggregate):
    def __init__(self) -> None:
        self.parts: List[str] = []

    def step(self, value: SqlValue) -> None:
        if value is not None:
            self.parts.append(str(value))

    def result(self) -> SqlValue:
        return ",".join(self.parts) if self.parts else None


class DistinctAggregate(Aggregate):
    """Wrapper implementing DISTINCT for any inner aggregate."""

    def __init__(self, inner: Aggregate) -> None:
        self.inner = inner
        self.seen: set = set()

    def step(self, value: SqlValue) -> None:
        if value is None:
            return
        marker = (type(value).__name__, value)
        if marker in self.seen:
            return
        self.seen.add(marker)
        self.inner.step(value)

    def result(self) -> SqlValue:
        return self.inner.result()


AGGREGATES: Dict[str, Type[Aggregate]] = {
    "count": CountAggregate,
    "sum": SumAggregate,
    "total": SumAggregate,
    "avg": AvgAggregate,
    "min": MinAggregate,
    "max": MaxAggregate,
    "group_concat": GroupConcatAggregate,
}


def make_aggregate(name: str, distinct: bool) -> Aggregate:
    cls = AGGREGATES.get(name.lower())
    if cls is None:
        raise UdfError(f"no such aggregate: {name}")
    agg = cls()
    return DistinctAggregate(agg) if distinct else agg


def is_aggregate(name: str) -> bool:
    return name.lower() in AGGREGATES


# ---------------------------------------------------------------------------
# UDF registry
# ---------------------------------------------------------------------------

class FunctionRegistry:
    """Scalar function registry: built-ins + user defined functions.

    This is the SQLite-UDF analogue RQL plugs into: a registered function
    is invoked once per row produced by the enclosing SELECT, which is
    exactly how the RQL "loop body" iterates over the snapshot set
    (paper Section 3).
    """

    def __init__(self) -> None:
        self._functions: Dict[str, Callable[..., SqlValue]] = dict(
            BUILTIN_SCALARS
        )

    def register(self, name: str, fn: Callable[..., SqlValue]) -> None:
        if not callable(fn):
            raise UdfError(f"UDF {name} is not callable")
        self._functions[name.lower()] = fn

    def unregister(self, name: str) -> None:
        self._functions.pop(name.lower(), None)

    def get(self, name: str) -> Optional[Callable[..., SqlValue]]:
        return self._functions.get(name.lower())

    def snapshot(self) -> Dict[str, Callable[..., SqlValue]]:
        """A copy handed to the expression compiler per statement."""
        return dict(self._functions)
