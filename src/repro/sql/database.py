"""The Database facade: SQLite-like API over the storage engine + Retro.

A :class:`Database` owns **two** storage engines, mirroring the paper's
deployment:

* the **main** engine holds application data and is snapshotable —
  ``COMMIT WITH SNAPSHOT`` declares Retro snapshots of it, and
  ``SELECT AS OF <sid> ...`` queries them;
* the **aux** engine holds non-snapshotable state: temporary tables
  (RQL result tables default here) and, at the RQL layer, the SnapIds
  table, which the paper stores "in a separate SQLite database than
  application data because it is a non-snapshotable persistent table".

API sketch::

    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    db.execute("BEGIN")
    db.execute("INSERT INTO t VALUES (1, 'x')")
    sid = db.execute("COMMIT WITH SNAPSHOT").scalar()
    db.execute(f"SELECT AS OF {sid} * FROM t")
    db.register_function("my_udf", lambda v: ...)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    CatalogError,
    ExecutionError,
    PlanError,
    SqlError,
    TransactionError,
)
from repro.retro.metrics import MetricsSink
from repro.sql import ast
from repro.sql.catalog import Catalog, Column, IndexInfo, TableInfo
from repro.sql.executor import (
    IndexAccess,
    ResultSet,
    TableAccess,
    TableWriter,
)
from repro.sql.expressions import ExpressionCompiler, Scope
from repro.sql.functions import FunctionRegistry
from repro.sql.parser import parse_one, parse_sql
from repro.sql.planner import (
    ExecutionContext,
    run_select,
    run_select_streaming,
)
from repro.sql.types import SqlValue
from repro.storage.btree import BTree
from repro.storage.disk import SimulatedDisk
from repro.storage.engine import StorageEngine
from repro.storage.page import DEFAULT_PAGE_SIZE

_CATALOG_ROOT = "catalog"


class _EngineSession:
    """Per-engine transaction state (main and aux each get one)."""

    def __init__(self, engine: StorageEngine) -> None:
        self.engine = engine
        self.txn = None
        self.declare_on_commit = False

    def ensure_txn(self):
        if self.txn is None:
            self.txn = self.engine.begin()
        return self.txn

    def source(self):
        return self.engine.page_source(self.ensure_txn())

    def commit(self, declare_snapshot: bool = False) -> Optional[int]:
        if self.txn is None:
            if declare_snapshot:
                # Empty declaring transaction: still declares a snapshot.
                self.txn = self.engine.begin()
            else:
                return None
        snapshot_id = self.engine.commit(self.txn,
                                         declare_snapshot=declare_snapshot)
        self.txn = None
        return snapshot_id

    def rollback(self) -> None:
        if self.txn is not None:
            self.engine.rollback(self.txn)
            self.txn = None


class Database:
    """A SQL database with Retro snapshots and UDF support."""

    def __init__(self, disk: Optional[SimulatedDisk] = None,
                 aux_disk: Optional[SimulatedDisk] = None,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 auto_checkpoint_on_snapshot: bool = True,
                 engine: Optional[StorageEngine] = None,
                 aux_engine: Optional[StorageEngine] = None,
                 write_gate: Optional[object] = None,
                 owner: Optional[object] = None) -> None:
        """``engine``/``aux_engine`` share an existing store (the
        multi-session server passes both); otherwise private engines are
        created from ``disk``/``aux_disk``.  ``write_gate`` (an object
        with ``acquire()``/``release()``) serializes write statements
        and explicit transactions across facades sharing the engines;
        ``owner`` tags this facade's MVCC read contexts so they can be
        reaped if a client disappears (defaults to the facade itself).
        """
        self.engine = engine if engine is not None \
            else StorageEngine(disk, page_size=page_size)
        self.aux_engine = aux_engine if aux_engine is not None \
            else StorageEngine(aux_disk, page_size=page_size)
        self._owns_engines = engine is None and aux_engine is None
        self._write_gate = write_gate
        self._owner = owner if owner is not None else self
        self._closed = False
        self.functions = FunctionRegistry()
        self.metrics: Optional[MetricsSink] = None
        #: materialized-view handler (a repro.retro.views.ViewManager),
        #: installed by RQLSession; None on a bare Database.
        self.view_handler = None
        self.auto_checkpoint_on_snapshot = auto_checkpoint_on_snapshot
        self._main = _EngineSession(self.engine)
        self._aux = _EngineSession(self.aux_engine)
        self._in_explicit_txn = False
        self._bootstrap_catalog(self.engine)
        self._bootstrap_catalog(self.aux_engine)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def _bootstrap_catalog(self, engine: StorageEngine) -> None:
        if engine.pager.get_root(_CATALOG_ROOT) is not None:
            return
        txn = engine.begin()
        try:
            source = engine.page_source(txn)
            tree = BTree.create(source)
            engine.pager.set_root(_CATALOG_ROOT, tree.root_id)
        except BaseException:
            engine.rollback(txn)
            raise
        engine.commit(txn)
        engine.checkpoint()

    def _catalog_root(self, engine: StorageEngine) -> int:
        root = engine.pager.get_root(_CATALOG_ROOT)
        if root is None:
            raise CatalogError("catalog missing (corrupt database)")
        return root

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def register_function(self, name: str,
                          fn: Callable[..., SqlValue]) -> None:
        """Register a scalar UDF (the SQLite-UDF analogue RQL uses)."""
        self.functions.register(name, fn)

    def execute(self, sql: str) -> ResultSet:
        """Parse and execute a single SQL statement."""
        return self._execute_statement(parse_one(sql))

    def executescript(self, sql: str) -> Optional[ResultSet]:
        """Execute ;-separated statements; returns the last result."""
        result: Optional[ResultSet] = None
        for statement in parse_sql(sql):
            result = self._execute_statement(statement)
        return result

    @contextmanager
    def transaction(self) -> Iterator["Database"]:
        """``BEGIN`` ... ``COMMIT``, rolling back on any error.

        The blessed idiom for multi-statement transactional scopes (RQL
        loop-body iterations, bulk loads): replaces hand-written
        ``BEGIN``/``COMMIT``/``except: ROLLBACK`` blocks.
        """
        self.execute("BEGIN")
        try:
            yield self
        except BaseException:
            self.execute("ROLLBACK")
            raise
        self.execute("COMMIT")

    @contextmanager
    def write_lock(self) -> Iterator[None]:
        """Hold the shared write gate across several statements.

        A no-op for embedded databases (no gate).  Sessions use this to
        make multi-statement invariants atomic across facades — e.g.
        declaring a snapshot and recording it in SnapIds must not
        interleave with another session's declaration, or the SnapIds
        row order diverges from snapshot order.  Reentrant per owner.
        """
        self._acquire_gate()
        try:
            yield
        finally:
            self._release_gate()

    def declare_snapshot(self) -> int:
        """Declare a snapshot outside any explicit transaction."""
        if self._in_explicit_txn:
            raise TransactionError(
                "declare_snapshot() cannot run inside an explicit "
                "transaction; use COMMIT WITH SNAPSHOT"
            )
        result = self.executescript("BEGIN; COMMIT WITH SNAPSHOT;")
        assert result is not None
        return int(result.scalar())

    @property
    def latest_snapshot_id(self) -> int:
        return self.engine.retro.latest_snapshot_id

    def checkpoint(self) -> None:
        """Flush both engines (drains Retro pre-states to the Pagelog)."""
        self.engine.checkpoint()
        self.aux_engine.checkpoint()

    def attach_metrics(self, sink: Optional[MetricsSink]) -> None:
        """Route snapshot-read and planner costs into ``sink``."""
        self.metrics = sink
        self.engine.retro.metrics = sink

    def close(self) -> None:
        """Release everything this facade holds; safe to call twice.

        Any open explicit transaction is rolled back, the write gate is
        released, and read contexts this facade's owner left open (e.g.
        abandoned cursors) are deregistered.  Facades over a shared
        store skip the checkpoint — flushing shared engines is the
        store's job, not one session's.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._in_explicit_txn:
                try:
                    self._main.rollback()
                    self._aux.rollback()
                finally:
                    self._in_explicit_txn = False
                    self._release_gate()
        finally:
            self.engine.release_read_contexts(self._owner)
            self.aux_engine.release_read_contexts(self._owner)
        if self._owns_engines:
            self.checkpoint()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- streaming (sqlite3_exec-style) --------------------------------------------

    def execute_streaming(self, sql: str,
                          on_row: Callable[..., None]) -> List[str]:
        """Run a SELECT, invoking ``on_row`` for every result row.

        This is the ``sqlite3_exec`` callback protocol the RQL loop body
        uses to process Qq results without materializing them.
        """
        statement = parse_one(sql)
        if not isinstance(statement, ast.Select):
            raise SqlError("execute_streaming requires a SELECT")
        ctx, cleanup = self._context_for_select(statement)
        try:
            return run_select_streaming(statement, ctx, on_row)
        finally:
            cleanup()

    def execute_cursor(self, sql: str):
        """Run a SELECT lazily: returns (columns, row_iterator).

        The column list is available before any row is consumed — the
        shape RQL's loop body needs to create its result table from the
        first iteration's Qq output.  The iterator owns the read
        context; it is released when the iterator is exhausted or
        closed.
        """
        statement = parse_one(sql)
        if not isinstance(statement, ast.Select):
            raise SqlError("execute_cursor requires a SELECT")
        ctx, cleanup = self._context_for_select(statement)
        from repro.sql.planner import _SelectPlanner

        try:
            planner = _SelectPlanner(statement, ctx)
            columns, rows = planner.columns_and_rows()
        except BaseException:
            cleanup()
            raise

        def guarded():
            try:
                yield from rows
            finally:
                cleanup()
        return columns, guarded()

    def execute_readonly_cursor(self, sql: str,
                                metrics: Optional[MetricsSink] = None):
        """Run a SELECT lazily on a private pair of read contexts.

        The thread-safe read path for parallel snapshot workers: unlike
        :meth:`execute_cursor` it never touches the session's statement
        transactions, so any number of threads may evaluate SELECTs
        concurrently while no writer is active.  ``metrics`` (when
        given) receives the planner's query-eval and index-creation
        accounting instead of the database-wide sink.
        """
        statement = parse_one(sql)
        if not isinstance(statement, ast.Select):
            raise SqlError("execute_readonly_cursor requires a SELECT")
        as_of = None
        if statement.as_of is not None:
            as_of = self._constant_int(statement.as_of, "AS OF")
        read_ctx = self.engine.begin_read(owner=self._owner)
        try:
            aux_read_ctx = self.aux_engine.begin_read(owner=self._owner)
            try:
                if as_of is not None:
                    main_source = self.engine.snapshot_source(as_of, read_ctx)
                else:
                    main_source = self.engine.read_source(read_ctx)
                aux_source = self.aux_engine.read_source(aux_read_ctx)
                ctx = _Context(self, main_source, aux_source,
                               metrics=metrics, as_of=as_of)
            except BaseException:
                aux_read_ctx.close()
                raise
        except BaseException:
            read_ctx.close()
            raise

        def cleanup() -> None:
            read_ctx.close()
            aux_read_ctx.close()

        from repro.sql.planner import _SelectPlanner

        try:
            planner = _SelectPlanner(statement, ctx)
            columns, rows = planner.columns_and_rows()
        except BaseException:
            cleanup()
            raise

        def guarded():
            try:
                yield from rows
            finally:
                cleanup()
        return columns, guarded()

    def table_writer(self, name: str) -> Tuple[TableAccess, TableWriter]:
        """Engine-level write access to a table in the current txn.

        This is the analogue of SQLite's internal b-tree API that UDF
        loop bodies use for per-record result processing (index probes +
        inserts/updates) without going through SQL parsing per record.
        Requires/creates the statement or explicit transaction; the
        caller commits via ``COMMIT`` (explicit txn) — mechanisms wrap
        each iteration in BEGIN/COMMIT.
        """
        ctx = self._write_context()
        table = ctx.open_table(name)
        return table, TableWriter(table, ctx.open_indexes(table))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    #: statements that mutate either engine and therefore must hold the
    #: write gate when facades share a store (reads never take it: MVCC
    #: serves them from registered read contexts).
    _WRITE_STATEMENTS = (
        ast.Insert, ast.Delete, ast.Update, ast.CreateTable, ast.DropTable,
        ast.CreateIndex, ast.DropIndex, ast.CreateMaterializedView,
        ast.RefreshMaterializedView, ast.DropMaterializedView, ast.Analyze,
    )

    def _acquire_gate(self) -> None:
        if self._write_gate is not None:
            self._write_gate.acquire()

    def _release_gate(self) -> None:
        if self._write_gate is not None:
            self._write_gate.release()

    def _execute_statement(self, statement) -> ResultSet:
        # The gate wraps the whole dispatch, not just the _statement()
        # scope: DDL helpers (e.g. _find_table_for_ddl) lazily open
        # engine write transactions before the scope begins.  Inside an
        # explicit transaction the gate is already held (acquired at
        # BEGIN) and stays held until COMMIT/ROLLBACK.
        if isinstance(statement, self._WRITE_STATEMENTS) \
                and not self._in_explicit_txn:
            self._acquire_gate()
            try:
                return self._dispatch_statement(statement)
            finally:
                self._release_gate()
        return self._dispatch_statement(statement)

    def _dispatch_statement(self, statement) -> ResultSet:
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement)
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            return self._execute_drop_table(statement)
        if isinstance(statement, ast.CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.DropIndex):
            return self._execute_drop_index(statement)
        if isinstance(statement, ast.Analyze):
            return self._execute_analyze(statement)
        if isinstance(statement, (ast.CreateMaterializedView,
                                  ast.RefreshMaterializedView,
                                  ast.DropMaterializedView)):
            return self._execute_view_statement(statement)
        if isinstance(statement, ast.Begin):
            return self._execute_begin()
        if isinstance(statement, ast.Commit):
            return self._execute_commit(statement)
        if isinstance(statement, ast.Rollback):
            return self._execute_rollback()
        raise SqlError(f"unsupported statement {type(statement).__name__}")

    def _execute_view_statement(self, statement) -> ResultSet:
        """Route materialized-view DDL to the session's ViewManager.

        The handler is installed by :class:`repro.core.session.RQLSession`
        (views need the mechanism/certificate machinery above the SQL
        layer); a bare Database has none.
        """
        handler = self.view_handler
        if handler is None:
            raise SqlError(
                "materialized views require an RQL session "
                "(no view handler attached to this Database)"
            )
        if isinstance(statement, ast.CreateMaterializedView):
            return handler.execute_create(statement)
        if isinstance(statement, ast.RefreshMaterializedView):
            return handler.execute_refresh(statement)
        return handler.execute_drop(statement)

    # -- transactions -----------------------------------------------------------

    def _execute_begin(self) -> ResultSet:
        if self._in_explicit_txn:
            raise TransactionError("already inside a transaction")
        # The gate is held for the whole explicit transaction: released
        # on COMMIT/ROLLBACK success (or by close() after a failure —
        # mirroring how _in_explicit_txn itself is cleared).
        self._acquire_gate()
        self._in_explicit_txn = True
        return _status()

    def _execute_commit(self, statement: ast.Commit) -> ResultSet:
        if not self._in_explicit_txn:
            raise TransactionError("no transaction is active")
        snapshot_id = self._main.commit(
            declare_snapshot=statement.with_snapshot,
        )
        self._aux.commit()
        self._in_explicit_txn = False
        try:
            if statement.with_snapshot and self.auto_checkpoint_on_snapshot:
                # Checkpoint before releasing the gate so no concurrent
                # writer holds an open overlay while shared engines
                # flush.
                self.checkpoint()
        finally:
            self._release_gate()
        if statement.with_snapshot:
            return ResultSet(["snapshot_id"], [(snapshot_id,)])
        return _status()

    def _execute_rollback(self) -> ResultSet:
        if not self._in_explicit_txn:
            raise TransactionError("no transaction is active")
        self._main.rollback()
        self._aux.rollback()
        self._in_explicit_txn = False
        self._release_gate()
        return _status()

    def _autocommit(self) -> None:
        """Commit statement-local transactions when not in BEGIN...COMMIT."""
        if not self._in_explicit_txn:
            self._main.commit()
            self._aux.commit()

    def _autorollback(self) -> None:
        if not self._in_explicit_txn:
            self._main.rollback()
            self._aux.rollback()

    @contextmanager
    def _statement(self) -> Iterator[None]:
        """Statement-local transaction scope for DML/DDL executors.

        Autocommits on success, autorollbacks on any error — both no-ops
        inside an explicit BEGIN...COMMIT, where the user owns the
        transaction boundary.
        """
        try:
            yield
            self._autocommit()
        except BaseException:
            self._autorollback()
            raise

    # -- EXPLAIN ------------------------------------------------------------------

    def _execute_explain(self, statement: ast.Explain) -> ResultSet:
        """EXPLAIN SELECT ...: access-path plan without executing."""
        from repro.sql.planner import explain_select

        inner = statement.statement
        if isinstance(inner, ast.RefreshMaterializedView):
            if self.view_handler is None:
                raise SqlError(
                    "materialized views require an RQL session "
                    "(no view handler attached to this Database)"
                )
            lines = self.view_handler.explain_refresh(inner.name,
                                                      full=inner.full)
            return ResultSet(["detail"], [(line,) for line in lines])
        if not isinstance(inner, ast.Select):
            raise SqlError(
                "EXPLAIN supports SELECT and REFRESH MATERIALIZED VIEW "
                "statements"
            )
        ctx, cleanup = self._context_for_select(inner)
        try:
            notes = explain_select(inner, ctx)
        finally:
            cleanup()
        return ResultSet(["detail"], [(note,) for note in notes])

    # -- SELECT ------------------------------------------------------------------

    def _execute_select(self, statement: ast.Select) -> ResultSet:
        ctx, cleanup = self._context_for_select(statement)
        try:
            return run_select(statement, ctx)
        finally:
            cleanup()

    def _context_for_select(self, statement: ast.Select):
        """Build an execution context + cleanup for a SELECT."""
        as_of = None
        if statement.as_of is not None:
            as_of = self._constant_int(statement.as_of, "AS OF")
        read_ctx = self.engine.begin_read(owner=self._owner)
        try:
            aux_read_ctx = self.aux_engine.begin_read(owner=self._owner)
            try:
                if as_of is not None:
                    # May raise UnknownSnapshotError for a bad AS OF id.
                    main_source = self.engine.snapshot_source(as_of, read_ctx)
                elif self._main.txn is not None:
                    main_source = self.engine.page_source(self._main.txn)
                else:
                    main_source = self.engine.read_source(read_ctx)
                if self._aux.txn is not None:
                    aux_source = self.aux_engine.page_source(self._aux.txn)
                else:
                    aux_source = self.aux_engine.read_source(aux_read_ctx)
                ctx = _Context(self, main_source, aux_source, as_of=as_of)
            except BaseException:
                aux_read_ctx.close()
                raise
        except BaseException:
            read_ctx.close()
            raise

        def cleanup() -> None:
            read_ctx.close()
            aux_read_ctx.close()
        return ctx, cleanup

    def _constant_int(self, expr: ast.Expr, label: str) -> int:
        compiler = ExpressionCompiler(Scope([]), self.functions.snapshot())
        value = compiler.compile(expr)(())
        if value is None:
            raise PlanError(f"{label} must be a non-NULL constant")
        return int(value)

    # -- write context ----------------------------------------------------------------

    def _write_context(self) -> "_Context":
        """Context whose sources are the open write transactions.

        Reads inside DML see the transaction's own writes; the engines'
        statement-local transactions are created lazily.
        """
        return _Context(
            self,
            self._main.source(),
            self._aux.source(),
            writable=True,
        )

    # -- INSERT / DELETE / UPDATE ------------------------------------------------------

    def _execute_insert(self, statement: ast.Insert) -> ResultSet:
        ctx = self._write_context()
        with self._statement():
            table = ctx.open_table(statement.table)
            writer = TableWriter(table, ctx.open_indexes(table))
            info = table.info
            if statement.columns:
                positions = [info.column_index(c) for c in statement.columns]
            else:
                positions = list(range(len(info.columns)))
            inserted = 0
            if statement.select is not None:
                sub_columns, rows = self._subselect_rows(statement.select,
                                                         ctx)
                for row in rows:
                    writer.insert(self._place(row, positions, info))
                    inserted += 1
            else:
                compiler = ExpressionCompiler(Scope([]),
                                              self.functions.snapshot())
                for value_exprs in statement.rows:
                    values = tuple(compiler.compile(e)(())
                                   for e in value_exprs)
                    writer.insert(self._place(values, positions, info))
                    inserted += 1
            return _status(inserted)

    def _subselect_rows(self, select: ast.Select, write_ctx: "_Context"):
        """Rows of an embedded SELECT (INSERT..SELECT / CREATE..AS).

        ``AS OF`` is honoured: the main database is read through the
        snapshot while the target (usually a temp table in the aux
        engine) stays writable — the exact shape of RQL's per-iteration
        ``INSERT INTO T SELECT AS OF sid ...``.
        """
        if select.as_of is None:
            result = run_select(select, write_ctx)
            return result.columns, result.rows
        sid = self._constant_int(select.as_of, "AS OF")
        read_ctx = self.engine.begin_read(owner=self._owner)
        try:
            main_source = self.engine.snapshot_source(sid, read_ctx)
            ctx = _Context(self, main_source, self._aux.source(),
                           as_of=sid)
            result = run_select(select, ctx)
            return result.columns, result.rows
        finally:
            read_ctx.close()

    @staticmethod
    def _place(values, positions, info: TableInfo):
        if len(values) != len(positions):
            raise ExecutionError(
                f"{len(positions)} columns but {len(values)} values"
            )
        row: List[SqlValue] = [None] * len(info.columns)
        for value, position in zip(values, positions):
            row[position] = value
        return tuple(row)

    def _execute_delete(self, statement: ast.Delete) -> ResultSet:
        ctx = self._write_context()
        with self._statement():
            table = ctx.open_table(statement.table)
            indexes = ctx.open_indexes(table)
            writer = TableWriter(table, indexes)
            from repro.sql.planner import scan_for_modify

            # Materialize first: never mutate a tree mid-scan.
            doomed = [
                rowid for rowid, _ in scan_for_modify(
                    table, indexes, statement.where,
                    self.functions.snapshot(),
                )
            ]
            for rowid in doomed:
                writer.delete(rowid)
            return _status(len(doomed))

    def _execute_update(self, statement: ast.Update) -> ResultSet:
        ctx = self._write_context()
        with self._statement():
            table = ctx.open_table(statement.table)
            indexes = ctx.open_indexes(table)
            writer = TableWriter(table, indexes)
            info = table.info
            scope = _table_scope(table)
            compiler = ExpressionCompiler(scope, self.functions.snapshot())
            assignments = [
                (info.column_index(column), compiler.compile(expr))
                for column, expr in statement.assignments
            ]
            from repro.sql.planner import scan_for_modify

            updates: List[Tuple[int, Tuple[SqlValue, ...]]] = []
            for rowid, row in scan_for_modify(
                    table, indexes, statement.where,
                    self.functions.snapshot()):
                new_row = list(row)
                for position, evaluator in assignments:
                    new_row[position] = evaluator(row)
                updates.append((rowid, tuple(new_row)))
            for rowid, new_row in updates:
                writer.update(rowid, new_row)
            return _status(len(updates))

    # -- DDL ------------------------------------------------------------------------

    def _session_for(self, temporary: bool) -> _EngineSession:
        return self._aux if temporary else self._main

    def _catalog_for_write(self, session: _EngineSession) -> Catalog:
        return Catalog(session.source(),
                       self._catalog_root(session.engine))

    def _execute_create_table(self, statement: ast.CreateTable) -> ResultSet:
        session = self._session_for(statement.temporary)
        with self._statement():
            catalog = self._catalog_for_write(session)
            if catalog.get_table(statement.name) is not None:
                if statement.if_not_exists:
                    return _status()
                raise CatalogError(
                    f"table {statement.name} already exists"
                )
            if statement.as_select is not None:
                return self._create_table_as(statement, session, catalog)
            columns = [Column(c.name, c.type_name) for c in statement.columns]
            pk = statement.primary_key or [
                c.name for c in statement.columns if c.primary_key
            ]
            info = self._create_table_object(
                session, catalog, statement.name, columns, pk,
                statement.temporary,
            )
            return _status()

    def _create_table_object(self, session: _EngineSession,
                             catalog: Catalog, name: str,
                             columns: List[Column], primary_key: List[str],
                             temporary: bool) -> TableInfo:
        source = session.source()
        tree = BTree.create(source)
        info = TableInfo(
            name=name, root_id=tree.root_id, columns=columns,
            primary_key=list(primary_key), temporary=temporary,
        )
        catalog.create_table(info)
        if primary_key:
            index_tree = BTree.create(source)
            catalog.create_index(IndexInfo(
                name=f"__pk_{name.lower()}",
                table=name, root_id=index_tree.root_id,
                columns=list(primary_key), unique=True,
                temporary=temporary,
            ))
        return info

    def _create_table_as(self, statement: ast.CreateTable,
                         session: _EngineSession,
                         catalog: Catalog) -> ResultSet:
        # Evaluate the SELECT with read access everywhere, write access
        # on the target engine.  AS OF is honoured via _subselect_rows.
        ctx = self._write_context()
        columns_out, rows = self._subselect_rows(statement.as_select, ctx)
        columns = [Column(name, "") for name in columns_out]
        info = self._create_table_object(
            session, catalog, statement.name, columns, [],
            statement.temporary,
        )
        table = TableAccess(info, session.source())
        writer = TableWriter(table, [])
        count = 0
        for row in rows:
            writer.insert(row)
            count += 1
        # The enclosing _execute_create_table _statement() scope commits.
        return _status(count)

    def _execute_drop_table(self, statement: ast.DropTable) -> ResultSet:
        session, catalog, info = self._find_table_for_ddl(statement.name)
        if info is None:
            # The catalog probe lazily opened statement-local write
            # transactions; settle them so no empty txn dangles (the
            # parallel executor refuses to run while one is open).
            self._autocommit()
            if statement.if_exists:
                return _status()
            raise CatalogError(f"no such table: {statement.name}")
        with self._statement():
            source = session.source()
            for index in catalog.indexes_for(info.name):
                BTree(source, index.root_id).drop()
                catalog.drop_index(index.name)
            BTree(source, info.root_id).drop()
            catalog.drop_table(info.name)
            return _status()

    def _find_table_for_ddl(self, name: str):
        """Locate a table for DDL: aux (temp) first, then main."""
        for session in (self._aux, self._main):
            catalog = self._catalog_for_write(session)
            info = catalog.get_table(name)
            if info is not None:
                info.temporary = session is self._aux
                return session, catalog, info
        return self._main, self._catalog_for_write(self._main), None

    def _execute_create_index(self, statement: ast.CreateIndex) -> ResultSet:
        session, catalog, info = self._find_table_for_ddl(statement.table)
        if info is None:
            self._autocommit()
            raise CatalogError(f"no such table: {statement.table}")
        with self._statement():
            if catalog.get_index(statement.name) is not None:
                if statement.if_not_exists:
                    return _status()
                raise CatalogError(
                    f"index {statement.name} already exists"
                )
            for column in statement.columns:
                info.column_index(column)  # validates
            source = session.source()
            sink = self.metrics
            clock = sink.clock if sink is not None else time.perf_counter
            started = clock()
            tree = BTree.create(source)
            index_info = IndexInfo(
                name=statement.name, table=info.name,
                root_id=tree.root_id, columns=list(statement.columns),
                unique=statement.unique, temporary=info.temporary,
            )
            catalog.create_index(index_info)
            table = TableAccess(info, source)
            index = IndexAccess(index_info, source)
            positions = [info.column_index(c) for c in statement.columns]
            count = 0
            for rowid, row in table.scan():
                values = [row[p] for p in positions]
                if statement.unique and index.has_prefix(values):
                    raise ExecutionError(
                        f"UNIQUE constraint failed while building "
                        f"{statement.name}"
                    )
                index.insert_entry(values, rowid)
                count += 1
            if sink is not None:
                sink.current.index_creation_seconds += clock() - started
            return _status(count)

    def _execute_drop_index(self, statement: ast.DropIndex) -> ResultSet:
        for session in (self._aux, self._main):
            catalog = self._catalog_for_write(session)
            info = catalog.get_index(statement.name)
            if info is not None:
                with self._statement():
                    BTree(session.source(), info.root_id).drop()
                    catalog.drop_index(statement.name)
                    return _status()
        self._autocommit()
        if statement.if_exists:
            return _status()
        raise CatalogError(f"no such index: {statement.name}")

    # -- ANALYZE ----------------------------------------------------------------------

    def _execute_analyze(self, statement: ast.Analyze) -> ResultSet:
        """Gather planner statistics into the aux ``__rql_stats`` table.

        Statistics are non-snapshotable metadata (like SnapIds), so they
        live in the aux engine; each gathering is stamped with the
        latest declared snapshot id, which is what keeps plans
        ``AS OF``-consistent — a query pinned to snapshot *s* only sees
        statistics gathered at or before *s*.
        """
        from repro.sql.stats import (
            STATS_COLUMNS,
            STATS_TABLE,
            compute_table_stats,
            stats_to_rows,
        )

        ctx = self._write_context()
        with self._statement():
            aux_catalog = self._catalog_for_write(self._aux)
            stats_info = aux_catalog.get_table(STATS_TABLE)
            if stats_info is None:
                stats_info = self._create_table_object(
                    self._aux, aux_catalog, STATS_TABLE,
                    [Column(name, type_name)
                     for name, type_name in STATS_COLUMNS],
                    [], True,
                )
            stats_info.temporary = True
            stats_table = TableAccess(stats_info, self._aux.source())
            writer = TableWriter(stats_table, [])
            if statement.table is not None:
                targets = [ctx.open_table(statement.table)]
            else:
                main_catalog = self._catalog_for_write(self._main)
                targets = [
                    TableAccess(info, self._main.source())
                    for info in main_catalog.list_tables()
                ]
            snapshot_id = self.latest_snapshot_id
            out_rows: List[Tuple[SqlValue, ...]] = []
            for target in targets:
                stats = compute_table_stats(
                    target, snapshot_id,
                    page_size=self.engine.page_size,
                )
                # Re-ANALYZE replaces this (table, snapshot) gathering.
                doomed = [
                    rowid for rowid, row in stats_table.scan()
                    if str(row[0]).lower() == stats.table
                    and int(row[1]) == snapshot_id
                ]
                for rowid in doomed:
                    writer.delete(rowid)
                for row in stats_to_rows(stats):
                    writer.insert(row)
                out_rows.append(
                    (stats.table, stats.row_count, stats.page_count),
                )
            return ResultSet(["table", "row_count", "page_count"],
                             out_rows)


# ---------------------------------------------------------------------------
# Execution context implementation
# ---------------------------------------------------------------------------

class _Context(ExecutionContext):
    """Binds the planner to this database's catalogs and sources."""

    def __init__(self, db: Database, main_source, aux_source,
                 writable: bool = False,
                 metrics: Optional[MetricsSink] = None,
                 as_of: Optional[int] = None) -> None:
        self._db = db
        self._main_source = main_source
        self._aux_source = aux_source
        self._writable = writable
        # Per-context sink override: parallel workers meter into their
        # own sink instead of the database-wide one.
        self._metrics = metrics
        # Snapshot pin of the statement (None = current state); bounds
        # which ANALYZE gatherings the planner may see.
        self._as_of = as_of
        self._stats_rows: Optional[List[Tuple]] = None
        self._stats_cache: Dict[str, object] = {}
        self._main_catalog = Catalog(
            main_source, db._catalog_root(db.engine),
        )
        self._aux_catalog = Catalog(
            aux_source, db._catalog_root(db.aux_engine),
        )

    def open_table(self, name: str) -> TableAccess:
        info = self._aux_catalog.get_table(name)
        if info is not None:
            info.temporary = True
            return TableAccess(info, self._aux_source)
        info = self._main_catalog.get_table(name)
        if info is not None:
            return TableAccess(info, self._main_source)
        raise PlanError(f"no such table: {name}")

    def open_indexes(self, table: TableAccess) -> List[IndexAccess]:
        if table.info.temporary:
            catalog, source = self._aux_catalog, self._aux_source
        else:
            catalog, source = self._main_catalog, self._main_source
        return [IndexAccess(ix, source)
                for ix in catalog.indexes_for(table.info.name)]

    @property
    def functions(self) -> Dict[str, Callable[..., SqlValue]]:
        return self._db.functions.snapshot()

    def table_stats(self, name: str):
        """Newest ANALYZE statistics visible at this context's AS OF pin.

        Reads the aux ``__rql_stats`` table directly (one scan, cached
        per statement).  Returns None — heuristic planning — when no
        eligible gathering exists, and never consults statistics for
        the statistics table itself.
        """
        from repro.sql.stats import STATS_TABLE, stats_from_rows

        key = name.lower()
        if key in self._stats_cache:
            return self._stats_cache[key]
        stats = None
        if key != STATS_TABLE:
            if self._stats_rows is None:
                info = self._aux_catalog.get_table(STATS_TABLE)
                if info is None:
                    self._stats_rows = []
                else:
                    table = TableAccess(info, self._aux_source)
                    self._stats_rows = list(table.scan_rows())
            stats = stats_from_rows(key, self._stats_rows,
                                    as_of=self._as_of)
        self._stats_cache[key] = stats
        return stats

    def _sink(self) -> Optional[MetricsSink]:
        return self._metrics if self._metrics is not None else self._db.metrics

    @property
    def clock(self) -> Callable[[], float]:
        sink = self._sink()
        return sink.clock if sink is not None else time.perf_counter

    def note_index_creation(self, seconds: float) -> None:
        sink = self._sink()
        if sink is not None:
            sink.current.index_creation_seconds += seconds

    def note_query_eval(self, seconds: float) -> None:
        sink = self._sink()
        if sink is not None:
            sink.current.query_eval_seconds += seconds


def _table_scope(table: TableAccess) -> Scope:
    return Scope([(table.info.name, c) for c in table.info.column_names()])


def _status(rowcount: int = 0) -> ResultSet:
    result = ResultSet([], [])
    result.rowcount = rowcount  # type: ignore[attr-defined]
    return result
