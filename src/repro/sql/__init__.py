"""SQLite-like SQL engine with Retro AS OF support and UDFs."""

from repro.sql.catalog import Catalog, Column, IndexInfo, TableInfo
from repro.sql.database import Database
from repro.sql.executor import ResultSet
from repro.sql.parser import parse_expression, parse_one, parse_sql

__all__ = [
    "Catalog",
    "Column",
    "Database",
    "IndexInfo",
    "ResultSet",
    "TableInfo",
    "parse_expression",
    "parse_one",
    "parse_sql",
]
