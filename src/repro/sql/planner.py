"""Query planning and SELECT execution.

Planning follows SQLite's spirit at a smaller scale:

* single-table access picks a native index when an equality or range
  conjunct matches the index's leading column, else a sequential scan;
* joins are left-deep nested loops; the inner side uses a native index
  when one matches the join column, otherwise the planner builds an
  **automatic covering index** (an ephemeral hash index) on the inner
  join column — SQLite's "automatic index" that Figure 9 of the paper
  shows dominating ad-hoc snapshot query cost.  Its build time is
  metered as ``index_creation_seconds``;
* GROUP BY is a hash aggregate; DISTINCT a hash dedupe; ORDER BY a sort
  on mixed-type-safe keys.

The planner is source-agnostic: the execution context supplies page
sources, so the same plan logic runs on the current state, inside a
write transaction, or ``AS OF`` a Retro snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError, ReproError
from repro.sql import ast
from repro.sql.executor import IndexAccess, ResultSet, Row, TableAccess
from repro.sql.expressions import (
    ExpressionCompiler,
    PostAggRef,
    Scope,
    conjuncts,
    contains_aggregate,
    walk,
)
from repro.sql.functions import is_aggregate, make_aggregate
from repro.sql.types import SqlValue, is_true


@dataclass
class BoundTable:
    binding: str
    access: TableAccess
    indexes: List[IndexAccess]

    @property
    def column_names(self) -> List[str]:
        return self.access.info.column_names()


class ExecutionContext:
    """What the planner needs from the database layer, per statement."""

    def open_table(self, name: str) -> TableAccess:
        raise NotImplementedError

    def open_indexes(self, table: TableAccess) -> List[IndexAccess]:
        raise NotImplementedError

    @property
    def functions(self) -> Dict[str, Callable[..., SqlValue]]:
        raise NotImplementedError

    def note_index_creation(self, seconds: float) -> None:
        """Report ephemeral (automatic) index build time."""

    def note_query_eval(self, seconds: float) -> None:
        """Report query evaluation time (excl. auto-index builds)."""

    @property
    def clock(self) -> Callable[[], float]:
        """Monotonic clock for planner timings.

        Contexts carrying a metrics sink return the sink's injectable
        clock, so every duration a query produces is deterministic
        under test.
        """
        return time.perf_counter


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_select(select: ast.Select, ctx: ExecutionContext) -> ResultSet:
    """Plan and execute a SELECT, returning a materialized result."""
    clock = ctx.clock
    started = clock()
    planner = _SelectPlanner(select, ctx)
    result = planner.run()
    ctx.note_query_eval(clock() - started
                        - planner.index_build_seconds)
    return result


def explain_select(select: ast.Select, ctx: ExecutionContext) -> List[str]:
    """Access-path decisions for a SELECT, without executing it.

    Mirrors SQLite's EXPLAIN QUERY PLAN at a coarse grain: one line per
    table access (scan / index search / automatic covering index) plus
    pipeline stages (aggregate, distinct, sort, limit).
    """
    planner = _SelectPlanner(select, ctx)
    # Building the pipeline records the notes; the generators are never
    # consumed, so nothing executes (auto-index builds happen lazily).
    planner.columns_and_rows()
    notes = list(planner.plan_notes)
    if select.as_of is not None:
        notes.insert(0, "AS OF snapshot (Retro SPT + snapshot cache)")
    if select.group_by or any(
            item.expr is not None and contains_aggregate(item.expr)
            for item in select.items if not item.is_star):
        notes.append("AGGREGATE (hash group-by)")
    if select.distinct:
        notes.append("DISTINCT (hash)")
    if select.order_by:
        notes.append("ORDER BY (sort)")
    if select.limit is not None or select.offset is not None:
        notes.append("LIMIT/OFFSET")
    notes.extend(_semantic_notes(select, ctx))
    return notes


def _semantic_notes(select: ast.Select, ctx: ExecutionContext) -> List[str]:
    """rqlint semantic summary lines appended to EXPLAIN output.

    Resolution is static (catalog metadata only, nothing executes).  A
    query the planner accepts but the resolver cannot summarize is not
    an EXPLAIN failure — the summary is simply omitted.
    """
    from repro.analysis.query.mergeclass import classify_select
    from repro.sql.semantic import ContextSchema, resolve_select
    try:
        summary = resolve_select(select, ContextSchema(ctx))
        merge_class, reason = classify_select(summary)
    except ReproError:
        return []
    notes: List[str] = []
    for table in summary.tables:
        columns = ", ".join(summary.read_columns.get(table, ()))
        notes.append(f"SEMANTIC: reads {table}({columns})")
    for predicate in summary.predicates:
        if not predicate.pushable:
            notes.append(f"SEMANTIC: join predicate {predicate.text}")
        elif predicate.indexed_by is not None:
            notes.append(f"SEMANTIC: pushdown {predicate.text} "
                         f"[index {predicate.indexed_by}]")
        elif predicate.index_candidate is not None:
            table, column = predicate.index_candidate
            notes.append(f"SEMANTIC: pushdown {predicate.text} "
                         f"[full scan; index candidate "
                         f"{table}({column})]")
        else:
            notes.append(f"SEMANTIC: pushdown {predicate.text}")
    notes.append(f"SEMANTIC: merge class {merge_class} ({reason})")
    return notes


def run_select_streaming(select: ast.Select, ctx: ExecutionContext,
                         on_row: Callable[[Sequence[SqlValue]], None]) -> List[str]:
    """Execute a SELECT, invoking ``on_row`` per row (UDF callback path).

    Returns the output column names.  This mirrors ``sqlite3_exec``'s
    row-callback protocol the RQL implementation builds on.
    """
    planner = _SelectPlanner(select, ctx)
    columns, rows = planner.columns_and_rows()
    for row in rows:
        on_row(row)
    return columns


# ---------------------------------------------------------------------------
# The planner proper
# ---------------------------------------------------------------------------

class _SelectPlanner:
    def __init__(self, select: ast.Select, ctx: ExecutionContext) -> None:
        self.select = select
        self.ctx = ctx
        self.index_build_seconds = 0.0
        #: human-readable access-path decisions (EXPLAIN output)
        self.plan_notes: List[str] = []

    # -- public -----------------------------------------------------------

    def run(self) -> ResultSet:
        columns, rows = self.columns_and_rows()
        return ResultSet(columns, list(rows))

    def columns_and_rows(self) -> Tuple[List[str], Iterator[Row]]:
        select = self.select
        tables, join_filters = self._resolve_from(select.source)
        predicates = conjuncts(select.where) + join_filters

        if tables:
            ordered, source_rows, remaining = self._plan_access(
                tables, predicates,
            )
            scope = _scope_for(ordered)
        else:
            ordered = []
            source_rows = iter([()])
            remaining = predicates
            scope = Scope([])

        compiler = ExpressionCompiler(scope, self.ctx.functions)

        if remaining:
            filters = [compiler.compile(p) for p in remaining]
            source_rows = _filtered(source_rows, filters)

        items = self._expand_stars(select.items, scope)
        aggregated = bool(select.group_by) or any(
            item.expr is not None and contains_aggregate(item.expr)
            for item in items
        ) or (select.having is not None
              and contains_aggregate(select.having))

        if aggregated:
            columns, rows = self._run_aggregate(items, source_rows,
                                                scope, compiler)
        else:
            columns, rows = self._run_plain(items, source_rows, compiler)

        rows = self._apply_limit(rows)
        return columns, rows

    # -- FROM resolution -----------------------------------------------------------

    def _resolve_from(self, source) -> Tuple[List[BoundTable], List[ast.Expr]]:
        tables: List[BoundTable] = []
        filters: List[ast.Expr] = []
        self._flatten_from(source, tables, filters)
        seen: Dict[str, bool] = {}
        for table in tables:
            key = table.binding.lower()
            if key in seen:
                raise PlanError(f"duplicate table binding: {table.binding}")
            seen[key] = True
        return tables, filters

    def _flatten_from(self, node, tables: List[BoundTable],
                      filters: List[ast.Expr]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Join):
            self._flatten_from(node.left, tables, filters)
            self._flatten_from(node.right, tables, filters)
            if node.condition is not None:
                filters.extend(conjuncts(node.condition))
            return
        if isinstance(node, ast.TableRef):
            access = self.ctx.open_table(node.name)
            indexes = self.ctx.open_indexes(access)
            tables.append(BoundTable(
                binding=node.binding, access=access, indexes=indexes,
            ))
            return
        raise PlanError(f"unsupported FROM node {type(node).__name__}")

    # -- access planning ----------------------------------------------------------

    def _plan_access(self, tables: List[BoundTable],
                     predicates: List[ast.Expr]):
        """Choose join order + access paths.

        Returns (ordered_tables, row_iterator, leftover_predicates); rows
        are concatenations of the ordered tables' columns.
        """
        remaining = list(predicates)
        ordered: List[BoundTable] = []
        pending = list(tables)

        # Outer table choice: prefer one constrained by a single-table
        # predicate (SQLite filters the selective side first), else the
        # first listed.
        def single_table_preds(table: BoundTable) -> List[ast.Expr]:
            scope = _scope_for([table])
            return [p for p in remaining if _predicate_uses_only(p, scope)]

        outer = None
        for table in pending:
            if single_table_preds(table):
                outer = table
                break
        if outer is None:
            outer = pending[0]
        pending.remove(outer)
        ordered.append(outer)

        rows, remaining = self._single_table_rows(outer, remaining)
        rows, remaining = self._push_down(ordered, rows, remaining)

        while pending:
            # Prefer a table joinable to the current prefix via an
            # equi-conjunct (with a native index if available).
            chosen = None
            chosen_join = None
            chosen_join_native = None
            for table in pending:
                join = self._find_equi_join(ordered, table, remaining)
                if join is not None:
                    native = self._native_index_for(table, join[1])
                    if chosen is None or (native is not None
                                          and chosen_join_native is None):
                        chosen, chosen_join = table, join
                        chosen_join_native = native
            if chosen is None:
                chosen = pending[0]
                chosen_join = None
                chosen_join_native = None
            pending.remove(chosen)
            rows, remaining = self._join_step(
                ordered, chosen, chosen_join, rows, remaining,
            )
            ordered.append(chosen)
            rows, remaining = self._push_down(ordered, rows, remaining)
        return ordered, rows, remaining

    def _push_down(self, ordered: List[BoundTable], rows,
                   predicates: List[ast.Expr]):
        """Filter with every predicate resolvable in the current prefix
        (classic predicate pushdown: filter before joining further)."""
        scope = _scope_for(ordered)
        applicable = [p for p in predicates
                      if _predicate_uses_only(p, scope)]
        if not applicable:
            return rows, predicates
        applicable_ids = {id(p) for p in applicable}
        remaining = [p for p in predicates if id(p) not in applicable_ids]
        compiler = ExpressionCompiler(scope, self.ctx.functions)
        filters = [compiler.compile(p) for p in applicable]
        return _filtered(rows, filters), remaining

    def _single_table_rows(self, table: BoundTable,
                           predicates: List[ast.Expr]):
        """Pick index/seq access for the outer table."""
        scope = _scope_for([table])
        compiler = ExpressionCompiler(scope, self.ctx.functions)
        # Equality on a native index's leading column?
        for pred in predicates:
            match = _match_index_equality(pred, table, scope)
            if match is not None:
                index, value = match
                remaining = [p for p in predicates if p is not pred]
                self.plan_notes.append(
                    f"SEARCH {table.binding} USING INDEX "
                    f"{index.info.name} (=)"
                )

                def rows_eq(index=index, value=value):
                    for rowid in index.lookup_equal([value]):
                        row = table.access.get(rowid)
                        if row is not None:
                            yield row
                return rows_eq(), remaining
        for pred in predicates:
            match = _match_index_range(pred, table, scope)
            if match is not None:
                index, lo, hi, lo_inc, hi_inc = match
                remaining = [p for p in predicates if p is not pred]
                self.plan_notes.append(
                    f"SEARCH {table.binding} USING INDEX "
                    f"{index.info.name} (range)"
                )

                def rows_range(index=index, lo=lo, hi=hi,
                               lo_inc=lo_inc, hi_inc=hi_inc):
                    for rowid in index.lookup_range(
                            lo, hi, lo_inclusive=lo_inc,
                            hi_inclusive=hi_inc):
                        row = table.access.get(rowid)
                        if row is not None:
                            yield row
                return rows_range(), remaining
        self.plan_notes.append(f"SCAN {table.binding}")
        return (row for _, row in table.access.scan()), list(predicates)

    def _find_equi_join(self, prefix: List[BoundTable], table: BoundTable,
                        predicates: List[ast.Expr]):
        """An equi-conjunct linking ``table`` to the joined prefix.

        Returns (predicate, inner_column, outer_expr_ast) or None.
        """
        prefix_scope = _scope_for(prefix)
        table_scope = _scope_for([table])
        for pred in predicates:
            if not (isinstance(pred, ast.BinaryOp) and pred.op == "="):
                continue
            for inner_side, outer_side in ((pred.left, pred.right),
                                           (pred.right, pred.left)):
                if not isinstance(inner_side, ast.ColumnRef):
                    continue
                if table_scope.try_resolve(inner_side) is None:
                    continue
                if not _predicate_uses_only(outer_side, prefix_scope):
                    continue
                return pred, inner_side, outer_side
        return None

    def _native_index_for(self, table: BoundTable,
                          column_ref: ast.ColumnRef) -> Optional[IndexAccess]:
        name = column_ref.name.lower()
        for index in table.indexes:
            if index.info.columns and index.info.columns[0].lower() == name:
                return index
        return None

    def _join_step(self, prefix: List[BoundTable], table: BoundTable,
                   join, prefix_rows, predicates: List[ast.Expr]):
        """Join one more table onto the prefix rows."""
        if join is None:
            # Cross join; predicates filter afterwards.
            self.plan_notes.append(f"CROSS JOIN {table.binding}")

            def cross():
                inner_rows = [row for _, row in table.access.scan()]
                for left in prefix_rows:
                    for right in inner_rows:
                        yield left + right
            return cross(), predicates

        pred, inner_col, outer_expr = join
        remaining = [p for p in predicates if p is not pred]
        prefix_scope = _scope_for(prefix)
        outer_eval = ExpressionCompiler(
            prefix_scope, self.ctx.functions,
        ).compile(outer_expr)
        native = self._native_index_for(table, inner_col)
        if native is not None:
            self.plan_notes.append(
                f"SEARCH {table.binding} USING INDEX "
                f"{native.info.name} ({inner_col.name}=?)"
            )

            def indexed():
                for left in prefix_rows:
                    key = outer_eval(left)
                    if key is None:
                        continue
                    for rowid in native.lookup_equal([key]):
                        row = table.access.get(rowid)
                        if row is not None:
                            yield left + row
            return indexed(), remaining

        # Automatic (ephemeral covering) index on the inner join column —
        # a real B+tree, as SQLite builds, so its creation cost carries
        # the realistic serialization work (Figure 9's dominant cost).
        from repro.sql.executor import EphemeralIndex

        self.plan_notes.append(
            f"SEARCH {table.binding} USING AUTOMATIC COVERING INDEX "
            f"({inner_col.name}=?)"
        )
        column_pos = table.access.info.column_index(inner_col.name)

        def auto_indexed():
            clock = self.ctx.clock
            started = clock()
            auto_index = EphemeralIndex()
            for _, row in table.access.scan():
                auto_index.add(row[column_pos], row)
            elapsed = clock() - started
            self.index_build_seconds += elapsed
            self.ctx.note_index_creation(elapsed)
            for left in prefix_rows:
                key = outer_eval(left)
                if key is None:
                    continue
                for row in auto_index.lookup(key):
                    yield left + row
        return auto_indexed(), remaining

    # -- star expansion ------------------------------------------------------------

    def _expand_stars(self, items: List[ast.SelectItem],
                      scope: Scope) -> List[ast.SelectItem]:
        out: List[ast.SelectItem] = []
        for item in items:
            if not item.is_star:
                out.append(item)
                continue
            if item.star_table is not None:
                positions = scope.positions_for_binding(item.star_table)
                if not positions:
                    raise PlanError(f"no such table: {item.star_table}")
            else:
                positions = list(range(len(scope)))
            for pos in positions:
                binding, column = scope.bindings[pos]
                out.append(ast.SelectItem(
                    expr=ast.ColumnRef(table=binding, name=column),
                    alias=column,
                ))
        if not out:
            raise PlanError("SELECT list is empty after star expansion")
        return out

    # -- plain (non-aggregate) pipeline ------------------------------------------------

    def _run_plain(self, items: List[ast.SelectItem], source_rows,
                   compiler: ExpressionCompiler):
        select = self.select
        evaluators = [compiler.compile(item.expr) for item in items]
        columns = [_column_name(item, i) for i, item in enumerate(items)]

        order_evals = self._order_evaluators(items, compiler)

        def produce() -> Iterator[Row]:
            if order_evals is None:
                if select.distinct:
                    seen = set()
                    for src in source_rows:
                        row = tuple(e(src) for e in evaluators)
                        if row in seen:
                            continue
                        seen.add(row)
                        yield row
                else:
                    for src in source_rows:
                        yield tuple(e(src) for e in evaluators)
                return
            keyed: List[Tuple[tuple, Row]] = []
            seen = set()
            for src in source_rows:
                row = tuple(e(src) for e in evaluators)
                if select.distinct:
                    if row in seen:
                        continue
                    seen.add(row)
                keys = tuple(e(src) for e, _ in order_evals)
                keyed.append((keys, row))
            yield from _sorted_rows(keyed, order_evals)
        return columns, produce()

    def _order_evaluators(self, items: List[ast.SelectItem],
                          compiler: ExpressionCompiler):
        """Compile ORDER BY items (against the same scope as ``compiler``).

        Returns a list of (evaluator, descending) or None when no ORDER
        BY.  Aliases and 1-based positions resolve to select item exprs.
        """
        select = self.select
        if not select.order_by:
            return None
        out = []
        for order in select.order_by:
            expr = self._resolve_order_expr(order.expr, items)
            out.append((compiler.compile(expr), order.descending))
        return out

    def _resolve_order_expr(self, expr: ast.Expr,
                            items: List[ast.SelectItem]) -> ast.Expr:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(items):
                raise PlanError(f"ORDER BY position {position} out of range")
            return items[position - 1].expr  # type: ignore[return-value]
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for item in items:
                if item.alias and item.alias.lower() == expr.name.lower():
                    return item.expr  # type: ignore[return-value]
        return expr

    # -- aggregate pipeline -----------------------------------------------------------

    def _run_aggregate(self, items: List[ast.SelectItem], source_rows,
                       scope: Scope, compiler: ExpressionCompiler):
        select = self.select
        group_exprs = list(select.group_by)
        # Collect aggregate calls from every post-aggregation expression.
        agg_calls: List[ast.FunctionCall] = []

        def collect(expr: Optional[ast.Expr]) -> None:
            if expr is None:
                return
            for node in walk(expr):
                if isinstance(node, ast.FunctionCall) \
                        and node.is_aggregate_name() \
                        and node not in agg_calls:
                    agg_calls.append(node)

        having = select.having
        if having is not None:
            # HAVING may reference select-list aliases (SQLite allows it).
            having = _resolve_alias_refs(having, items)

        for item in items:
            collect(item.expr)
        collect(having)
        for order in select.order_by:
            collect(_resolve_alias_refs(order.expr, items))

        for call in agg_calls:
            if not is_aggregate(call.name):
                raise PlanError(f"no such aggregate: {call.name}")

        group_evals = [compiler.compile(g) for g in group_exprs]
        agg_arg_evals = []
        for call in agg_calls:
            if call.star:
                agg_arg_evals.append(lambda row: 1)
            elif len(call.args) == 1:
                agg_arg_evals.append(compiler.compile(call.args[0]))
            else:
                raise PlanError(
                    f"aggregate {call.name}() takes exactly one argument"
                )

        # Substitution mapping into the aggregated row:
        # positions [0, len(group)) are group keys, then aggregates.
        mapping: List[Tuple[ast.Expr, PostAggRef]] = []
        for i, g in enumerate(group_exprs):
            display = g.name if isinstance(g, ast.ColumnRef) else ""
            mapping.append((g, PostAggRef(i, display)))
        for j, call in enumerate(agg_calls):
            display = f"{call.name.upper()}(*)" if call.star \
                else f"{call.name.upper()}()"
            mapping.append((call, PostAggRef(len(group_exprs) + j, display)))

        post_items = [
            ast.SelectItem(expr=_substitute(item.expr, mapping),
                           alias=item.alias)
            for item in items
        ]
        post_scope = Scope([("", f"#{i}") for i in range(len(mapping))])
        post_compiler = ExpressionCompiler(post_scope, self.ctx.functions)
        self._check_grouped(post_items, group_exprs)

        evaluators = [post_compiler.compile(item.expr)
                      for item in post_items]
        columns = [_column_name(item, i)
                   for i, item in enumerate(post_items)]

        having_eval = None
        if having is not None:
            having_eval = post_compiler.compile(
                _substitute(having, mapping)
            )
        order_evals = None
        if select.order_by:
            order_evals = []
            for order in select.order_by:
                expr = self._resolve_order_expr(order.expr, post_items)
                expr = _substitute(expr, mapping)
                order_evals.append(
                    (post_compiler.compile(expr), order.descending)
                )

        def produce() -> Iterator[Row]:
            groups: Dict[tuple, list] = {}
            for src in source_rows:
                key = tuple(g(src) for g in group_evals)
                aggs = groups.get(key)
                if aggs is None:
                    aggs = [make_aggregate(c.name, c.distinct)
                            for c in agg_calls]
                    groups[key] = aggs
                for agg, arg in zip(aggs, agg_arg_evals):
                    agg.step(arg(src))
            if not groups and not group_exprs:
                groups[()] = [make_aggregate(c.name, c.distinct)
                              for c in agg_calls]
            out: List[Tuple[tuple, Row]] = []
            seen = set()
            for key, aggs in groups.items():
                agg_row = tuple(key) + tuple(a.result() for a in aggs)
                if having_eval is not None and \
                        not is_true(having_eval(agg_row)):
                    continue
                row = tuple(e(agg_row) for e in evaluators)
                if select.distinct:
                    if row in seen:
                        continue
                    seen.add(row)
                if order_evals is None:
                    out.append(((), row))
                else:
                    keys = tuple(e(agg_row) for e, _ in order_evals)
                    out.append((keys, row))
            if order_evals is None:
                for _, row in out:
                    yield row
            else:
                yield from _sorted_rows(out, order_evals)
        return columns, produce()

    def _check_grouped(self, post_items: List[ast.SelectItem],
                       group_exprs: List[ast.Expr]) -> None:
        for item in post_items:
            for node in walk(item.expr):
                if isinstance(node, ast.ColumnRef):
                    raise PlanError(
                        f"column {node.display()} is neither grouped "
                        f"nor aggregated"
                    )

    # -- limit --------------------------------------------------------------------

    def _apply_limit(self, rows: Iterator[Row]) -> Iterator[Row]:
        select = self.select
        if select.limit is None and select.offset is None:
            return rows
        limit = _constant_int(select.limit, "LIMIT")
        offset = _constant_int(select.offset, "OFFSET") or 0

        def limited() -> Iterator[Row]:
            skipped = 0
            produced = 0
            for row in rows:
                if skipped < offset:
                    skipped += 1
                    continue
                if limit is not None and produced >= limit:
                    return
                produced += 1
                yield row
        return limited()


# ---------------------------------------------------------------------------
# DML access planning (index-assisted row location for DELETE/UPDATE)
# ---------------------------------------------------------------------------

def scan_for_modify(table: TableAccess, indexes: List[IndexAccess],
                    where: Optional[ast.Expr],
                    functions: Dict[str, Callable[..., SqlValue]]):
    """Yield (rowid, row) pairs matching ``where``, via an index when one
    fits.  Used by DELETE and UPDATE, which must not mutate mid-scan —
    callers materialize before writing."""
    bound = BoundTable(binding=table.info.name, access=table,
                       indexes=indexes)
    scope = _scope_for([bound])
    compiler = ExpressionCompiler(scope, functions)
    predicates = conjuncts(where)
    for pred in predicates:
        match = _match_index_equality(pred, bound, scope)
        if match is not None:
            index, value = match
            rest = [compiler.compile(p) for p in predicates if p is not pred]

            def rows_eq():
                for rowid in index.lookup_equal([value]):
                    row = table.get(rowid)
                    if row is not None and \
                            all(is_true(f(row)) for f in rest):
                        yield rowid, row
            return rows_eq()
    for pred in predicates:
        match = _match_index_range(pred, bound, scope)
        if match is not None:
            index, lo, hi, lo_inc, hi_inc = match
            rest = [compiler.compile(p) for p in predicates if p is not pred]

            def rows_range():
                for rowid in index.lookup_range(lo, hi, lo_inclusive=lo_inc,
                                                hi_inclusive=hi_inc):
                    row = table.get(rowid)
                    if row is not None and \
                            all(is_true(f(row)) for f in rest):
                        yield rowid, row
            return rows_range()
    filters = [compiler.compile(p) for p in predicates]

    def rows_scan():
        for rowid, row in table.scan():
            if all(is_true(f(row)) for f in filters):
                yield rowid, row
    return rows_scan()


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _scope_for(tables: List[BoundTable]) -> Scope:
    bindings: List[Tuple[str, str]] = []
    for table in tables:
        for column in table.column_names:
            bindings.append((table.binding, column))
    return Scope(bindings)


def _predicate_uses_only(expr: ast.Expr, scope: Scope) -> bool:
    for node in walk(expr):
        if isinstance(node, ast.ColumnRef):
            if scope.try_resolve(node) is None:
                return False
    return True


def _is_constant(expr: ast.Expr) -> bool:
    return not any(isinstance(node, (ast.ColumnRef, PostAggRef))
                   for node in walk(expr))


def _constant_value(expr: ast.Expr,
                    functions: Optional[Dict] = None) -> SqlValue:
    compiler = ExpressionCompiler(Scope([]), functions or {})
    return compiler.compile(expr)(())


def _constant_int(expr: Optional[ast.Expr], label: str) -> Optional[int]:
    if expr is None:
        return None
    if not _is_constant(expr):
        raise PlanError(f"{label} must be a constant")
    value = _constant_value(expr)
    if value is None:
        return None
    return int(value)


def _match_index_equality(pred: ast.Expr, table: BoundTable, scope: Scope):
    """index, constant for predicates like col = <constant>."""
    if not (isinstance(pred, ast.BinaryOp) and pred.op == "="):
        return None
    for col_side, val_side in ((pred.left, pred.right),
                               (pred.right, pred.left)):
        if isinstance(col_side, ast.ColumnRef) \
                and scope.try_resolve(col_side) is not None \
                and _is_constant(val_side):
            name = col_side.name.lower()
            for index in table.indexes:
                if index.info.columns and \
                        index.info.columns[0].lower() == name:
                    return index, _constant_value(val_side)
    return None


def _match_index_range(pred: ast.Expr, table: BoundTable, scope: Scope):
    """index, lo, hi, lo_inc, hi_inc for range predicates on an index."""
    ops = {"<": (None, True), "<=": (None, True),
           ">": (True, None), ">=": (True, None)}
    if isinstance(pred, ast.Between) and not pred.negated:
        col = pred.operand
        if isinstance(col, ast.ColumnRef) \
                and scope.try_resolve(col) is not None \
                and _is_constant(pred.low) and _is_constant(pred.high):
            index = _leading_index(table, col.name)
            if index is not None:
                return (index, [_constant_value(pred.low)],
                        [_constant_value(pred.high)], True, True)
        return None
    if not (isinstance(pred, ast.BinaryOp) and pred.op in ops):
        return None
    for col_side, val_side, op in (
            (pred.left, pred.right, pred.op),
            (pred.right, pred.left, _flip(pred.op))):
        if isinstance(col_side, ast.ColumnRef) \
                and scope.try_resolve(col_side) is not None \
                and _is_constant(val_side):
            index = _leading_index(table, col_side.name)
            if index is None:
                return None
            value = [_constant_value(val_side)]
            if op == "<":
                return index, None, value, True, False
            if op == "<=":
                return index, None, value, True, True
            if op == ">":
                return index, value, None, False, True
            return index, value, None, True, True
    return None


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _leading_index(table: BoundTable, column: str) -> Optional[IndexAccess]:
    lowered = column.lower()
    for index in table.indexes:
        if index.info.columns and index.info.columns[0].lower() == lowered:
            return index
    return None


def _filtered(rows: Iterator[Row], filters) -> Iterator[Row]:
    for row in rows:
        if all(is_true(f(row)) for f in filters):
            yield row


def _sorted_rows(keyed: List[Tuple[tuple, Row]], order_evals) -> Iterator[Row]:
    descending = [d for _, d in order_evals]

    def sort_key(entry: Tuple[tuple, Row]):
        keys = entry[0]
        out = []
        for value, desc in zip(keys, descending):
            rank, val = _negatable_key(value)
            if desc:
                out.append((-rank, _Reversed(val)))
            else:
                out.append((rank, val))
        return tuple(out)

    keyed.sort(key=sort_key)
    for _, row in keyed:
        yield row


def _negatable_key(value: SqlValue):
    from repro.sql.types import sort_key as base_key

    rank, val = base_key(value)
    return rank, val


class _Reversed:
    """Wrapper inverting comparisons, for DESC sort of mixed types."""

    __slots__ = ("value",)

    def __init__(self, value: SqlValue) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        if self.value == other.value:
            return False
        try:
            return other.value < self.value
        except TypeError:
            return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _resolve_alias_refs(expr: ast.Expr,
                        items: List[ast.SelectItem]) -> ast.Expr:
    """Replace bare column refs matching select aliases with their expr
    (SQLite allows aliases in HAVING and ORDER BY)."""
    aliases = {
        item.alias.lower(): item.expr
        for item in items
        if item.alias and item.expr is not None
    }
    if not aliases:
        return expr

    def mapper(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.ColumnRef) and node.table is None:
            replacement = aliases.get(node.name.lower())
            if replacement is not None:
                return replacement
        return node

    return _rewrite(expr, mapper)


def _rewrite(expr: ast.Expr, mapper) -> ast.Expr:
    """Bottom-up rewrite: apply ``mapper`` to every node."""
    replaced = mapper(expr)
    if replaced is not expr:
        return replaced
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite(expr.operand, mapper))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _rewrite(expr.left, mapper),
                            _rewrite(expr.right, mapper))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_rewrite(expr.operand, mapper), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(_rewrite(expr.operand, mapper),
                          [_rewrite(i, mapper) for i in expr.items],
                          expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(_rewrite(expr.operand, mapper),
                           _rewrite(expr.low, mapper),
                           _rewrite(expr.high, mapper), expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(_rewrite(expr.operand, mapper),
                        _rewrite(expr.pattern, mapper), expr.negated)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name,
                                [_rewrite(a, mapper) for a in expr.args],
                                expr.distinct, expr.star)
    if isinstance(expr, ast.CaseExpr):
        return ast.CaseExpr(
            _rewrite(expr.operand, mapper) if expr.operand else None,
            [(_rewrite(c, mapper), _rewrite(r, mapper))
             for c, r in expr.branches],
            _rewrite(expr.else_result, mapper)
            if expr.else_result else None,
        )
    return expr


def _substitute(expr: ast.Expr, mapping) -> ast.Expr:
    """Replace any node equal to a mapping key with its PostAggRef."""
    for original, replacement in mapping:
        if expr == original:
            return replacement
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _substitute(expr.operand, mapping))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _substitute(expr.left, mapping),
                            _substitute(expr.right, mapping))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_substitute(expr.operand, mapping), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(_substitute(expr.operand, mapping),
                          [_substitute(i, mapping) for i in expr.items],
                          expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(_substitute(expr.operand, mapping),
                           _substitute(expr.low, mapping),
                           _substitute(expr.high, mapping), expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(_substitute(expr.operand, mapping),
                        _substitute(expr.pattern, mapping), expr.negated)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name,
                                [_substitute(a, mapping) for a in expr.args],
                                expr.distinct, expr.star)
    if isinstance(expr, ast.CaseExpr):
        return ast.CaseExpr(
            _substitute(expr.operand, mapping) if expr.operand else None,
            [(_substitute(c, mapping), _substitute(r, mapping))
             for c, r in expr.branches],
            _substitute(expr.else_result, mapping)
            if expr.else_result else None,
        )
    return expr


def _column_name(item: ast.SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, PostAggRef) and expr.display:
        return expr.display
    if isinstance(expr, ast.FunctionCall):
        if expr.star:
            return f"{expr.name.upper()}(*)"
        return f"{expr.name.upper()}()"
    return f"column{position + 1}"
