"""Query planning and SELECT execution.

Planning is split into a **pure planner** and an **executor**:

* :func:`plan_from` turns catalog facts (:class:`TableDesc`), the WHERE
  conjuncts and a statistics lookup into an explicit :class:`SelectPlan`
  tree of :class:`PlanNode` steps.  With no statistics it reproduces the
  original fixed heuristics exactly (first matching equality index, then
  range index, then scan; first equi-joinable table, native index
  preferred).  Once ``ANALYZE`` has gathered statistics the planner
  costs every candidate access path — sequential page fetches vs index
  probe plus matched-row fetches — and keeps the cheapest, picking the
  outer table and join side by estimated filtered cardinality.
* ``_SelectPlanner`` executes a plan: single-table access picks the
  planned native index or a sequential scan; joins are left-deep nested
  loops where the inner side uses the planned native index or an
  **automatic covering index** (an ephemeral hash index) — SQLite's
  "automatic index" that Figure 9 of the paper shows dominating ad-hoc
  snapshot query cost.  Its build time is metered as
  ``index_creation_seconds``.  Predicate pushdown recorded in the plan
  filters each join prefix as early as possible, so per-snapshot ``Qs``
  iteration over a cold snapshot fetches only matching Pagelog pages.
* GROUP BY is a hash aggregate; DISTINCT a hash dedupe; ORDER BY a sort
  on mixed-type-safe keys.

The same pure planner serves three consumers: execution, ``EXPLAIN``
(:func:`explain_select` renders access, COST and SEMANTIC lines without
executing anything), and the static certification path
(:func:`plan_select_static` / :func:`render_plan`) that planlint and the
golden-plan corpus drive from catalog metadata alone.

The executor is source-agnostic: the execution context supplies page
sources, so the same plan runs on the current state, inside a write
transaction, or ``AS OF`` a Retro snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError, ReproError
from repro.sql import ast
from repro.sql.executor import IndexAccess, ResultSet, Row, TableAccess
from repro.sql.expressions import (
    ExpressionCompiler,
    PostAggRef,
    Scope,
    conjuncts,
    contains_aggregate,
    walk,
)
from repro.sql.functions import is_aggregate, make_aggregate
from repro.sql.stats import StatsProvider, TableStats
from repro.sql.types import SqlValue, is_true

# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

#: fetching one Pagelog page during a sequential scan
SEQ_PAGE_COST = 1.0
#: descending an index to its first matching entry
INDEX_PROBE_COST = 1.0
#: fetching one matched row's page through an index
ROW_FETCH_COST = 1.0
#: evaluating predicates against one row
CPU_ROW_COST = 0.01


def _clamp01(value: float) -> float:
    return min(1.0, max(0.0, value))


def _fmt_num(value: Optional[float]) -> str:
    if value is None:
        return "?"
    return f"{value:g}"


@dataclass
class BoundTable:
    binding: str
    access: TableAccess
    indexes: List[IndexAccess]

    @property
    def column_names(self) -> List[str]:
        return self.access.info.column_names()


# ---------------------------------------------------------------------------
# Plan tree
# ---------------------------------------------------------------------------


@dataclass
class TableDesc:
    """Catalog facts the pure planner needs about one FROM table."""

    binding: str                               #: alias or table name
    table: str                                 #: underlying table name
    columns: List[str]
    indexes: List[Tuple[str, Tuple[str, ...]]]  #: (index name, columns)
    ordinal: int = 0                           #: position in the FROM list

    def scope(self) -> Scope:
        return Scope([(self.binding, c) for c in self.columns])


@dataclass
class AccessSpec:
    """How the outer table is read: scan, index equality or index range."""

    kind: str                        #: 'scan' | 'eq' | 'range'
    index: Optional[str] = None      #: index name for 'eq'/'range'
    column: Optional[str] = None     #: indexed column (lowered)
    pred: Optional[ast.Expr] = None  #: conjunct consumed by the index
    value: object = None             #: equality key
    lo: object = None                #: range bounds ([value] or None)
    hi: object = None
    lo_inc: bool = True
    hi_inc: bool = True


@dataclass
class JoinSpec:
    """How one more table joins onto the prefix rows."""

    kind: str                                  #: 'native' | 'auto' | 'cross'
    index: Optional[str] = None                #: native index name
    pred: Optional[ast.Expr] = None            #: equi-join conjunct consumed
    inner_col: Optional[ast.ColumnRef] = None  #: join column on this table
    outer_expr: Optional[ast.Expr] = None      #: key expr over the prefix


@dataclass
class PlanNode:
    """One step of a left-deep plan: access the outer table or join one
    more table, then apply the predicates pushed down to this prefix."""

    desc: TableDesc
    note: str                                   #: EXPLAIN access line
    access: Optional[AccessSpec] = None         #: set on the first step
    join: Optional[JoinSpec] = None             #: set on later steps
    pushed: List[ast.Expr] = field(default_factory=list)
    #: estimates are *raw* (unclamped): corrupt statistics surface as
    #: est_rows above the table cardinality, which RQL114 flags.
    est_rows: Optional[float] = None
    est_pages: Optional[int] = None
    selectivity: Optional[float] = None
    cost: Optional[float] = None
    seq_cost: Optional[float] = None
    costed: bool = False                        #: statistics were available
    chosen_by: str = "heuristic"                #: 'heuristic' | 'cost'
    path_desc: str = ""                         #: human access-path label


@dataclass
class SelectPlan:
    """An ordered plan tree plus the conjuncts no prefix could absorb."""

    steps: List[PlanNode]
    residual: List[ast.Expr] = field(default_factory=list)

    def access_notes(self) -> List[str]:
        return [step.note for step in self.steps]

    def cost_notes(self) -> List[str]:
        lines: List[str] = []
        for node in self.steps:
            binding = node.desc.binding
            if not node.costed:
                lines.append(
                    f"COST: {binding} no statistics "
                    f"(heuristic access path)"
                )
                continue
            lines.append(
                f"COST: {binding} est. rows {_fmt_num(node.est_rows)} "
                f"est. pages {node.est_pages} "
                f"cost {_fmt_num(node.cost)} via {node.path_desc}"
            )
        return lines


# ---------------------------------------------------------------------------
# The pure planner
# ---------------------------------------------------------------------------

StatsLookup = Callable[[str], Optional[TableStats]]


def plan_from(descs: List[TableDesc], predicates: List[ast.Expr],
              stats_for: StatsLookup) -> SelectPlan:
    """Choose join order and access paths from catalog facts alone.

    Deterministic and side-effect free: the same descs, predicates and
    statistics always yield the same plan, which is what makes plans
    certifiable artifacts (the golden-plan corpus pins this function's
    output).  Without statistics the choices replicate the historical
    heuristics exactly, so un-ANALYZEd databases plan as before.
    """
    if not descs:
        return SelectPlan(steps=[], residual=list(predicates))
    seen: Dict[str, bool] = {}
    for desc in descs:
        key = desc.binding.lower()
        if key in seen:
            raise PlanError(f"duplicate table binding: {desc.binding}")
        seen[key] = True

    # Ambiguity must not depend on join order: an unqualified ref that
    # matches two FROM tables would silently bind to whichever table the
    # plan visits first (pushdown resolves against prefix scopes), so a
    # cost-driven reorder could change what the query *means*.  Reject
    # against the full scope before any ordering decision.
    full_scope = _desc_scope(descs)
    for pred in predicates:
        for node in walk(pred):
            if isinstance(node, ast.ColumnRef) \
                    and full_scope.is_ambiguous(node):
                raise PlanError(f"ambiguous column name: {node.name}")

    stats_by: Dict[int, Optional[TableStats]] = {
        desc.ordinal: stats_for(desc.table) for desc in descs
    }
    fully_costed = all(stats_by[d.ordinal] is not None for d in descs)
    remaining = list(predicates)
    pending = list(descs)

    def single_preds(desc: TableDesc) -> List[ast.Expr]:
        scope = desc.scope()
        return [p for p in remaining if _predicate_uses_only(p, scope)]

    # Outer table: with full statistics, the table with the smallest
    # estimated filtered cardinality (filter the selective side first);
    # otherwise the historical heuristic — the first table constrained
    # by a single-table predicate, else the first listed.
    if fully_costed and len(descs) > 1:
        outer = None
        outer_rows = 0.0
        for desc in pending:
            est = _filtered_row_estimate(
                stats_by[desc.ordinal], single_preds(desc), desc,
            )
            if outer is None or est < outer_rows:
                outer, outer_rows = desc, est
    else:
        outer = next((d for d in pending if single_preds(d)), pending[0])
    pending.remove(outer)

    node, remaining = _plan_single_access(
        outer, remaining, stats_by[outer.ordinal],
    )
    steps = [node]
    remaining = _settle_pushdown(steps, remaining, stats_by)

    while pending:
        chosen = None
        chosen_join = None
        chosen_native: Optional[str] = None
        if fully_costed:
            best_cost = 0.0
            for desc in pending:
                join = _find_equi_join_desc(
                    [s.desc for s in steps], desc, remaining,
                )
                if join is None:
                    continue
                native = _desc_leading_index(desc, join[1].name)
                probe = _join_probe_cost(
                    stats_by[desc.ordinal], join[1].name, native is not None,
                )
                if chosen is None or probe < best_cost:
                    chosen, chosen_join = desc, join
                    chosen_native, best_cost = native, probe
        else:
            for desc in pending:
                join = _find_equi_join_desc(
                    [s.desc for s in steps], desc, remaining,
                )
                if join is not None:
                    native = _desc_leading_index(desc, join[1].name)
                    if chosen is None or (native is not None
                                          and chosen_native is None):
                        chosen, chosen_join = desc, join
                        chosen_native = native
        if chosen is None:
            chosen, chosen_join, chosen_native = pending[0], None, None
        pending.remove(chosen)
        node = _plan_join_node(
            chosen, chosen_join, chosen_native,
            stats_by[chosen.ordinal], fully_costed,
        )
        if chosen_join is not None:
            consumed = chosen_join[0]
            remaining = [p for p in remaining if p is not consumed]
        steps.append(node)
        remaining = _settle_pushdown(steps, remaining, stats_by)

    return SelectPlan(steps=steps, residual=remaining)


def _settle_pushdown(steps: List[PlanNode], remaining: List[ast.Expr],
                     stats_by: Dict[int, Optional[TableStats]],
                     ) -> List[ast.Expr]:
    """Assign every conjunct resolvable over the current prefix to the
    newest step (classic pushdown: filter before joining further), and
    refine that step's row estimate with the pushed selectivities."""
    scope = _desc_scope([step.desc for step in steps])
    applicable = [p for p in remaining if _predicate_uses_only(p, scope)]
    if not applicable:
        return remaining
    applicable_ids = {id(p) for p in applicable}
    node = steps[-1]
    node.pushed.extend(applicable)
    stats = stats_by.get(node.desc.ordinal)
    if stats is not None and node.est_rows is not None:
        own_scope = node.desc.scope()
        for pred in applicable:
            if _predicate_uses_only(pred, own_scope):
                node.est_rows *= _clamp01(
                    _pred_selectivity(stats, pred, node.desc)
                )
    return [p for p in remaining if id(p) not in applicable_ids]


def _plan_single_access(desc: TableDesc, predicates: List[ast.Expr],
                        stats: Optional[TableStats],
                        ) -> Tuple[PlanNode, List[ast.Expr]]:
    """Access path for the outer table: heuristic first-match without
    statistics, cheapest costed candidate with them."""
    scope = desc.scope()
    if stats is None:
        for pred in predicates:
            match = _desc_match_eq(pred, desc, scope)
            if match is not None:
                spec = AccessSpec(kind="eq", index=match[0],
                                  column=match[1], pred=pred,
                                  value=match[2])
                node = _access_node(desc, spec, None)
                return node, [p for p in predicates if p is not pred]
        for pred in predicates:
            match = _desc_match_range(pred, desc, scope)
            if match is not None:
                index, column, lo, hi, lo_inc, hi_inc = match
                spec = AccessSpec(kind="range", index=index, column=column,
                                  pred=pred, lo=lo, hi=hi,
                                  lo_inc=lo_inc, hi_inc=hi_inc)
                node = _access_node(desc, spec, None)
                return node, [p for p in predicates if p is not pred]
        node = _access_node(desc, AccessSpec(kind="scan"), None)
        return node, list(predicates)

    # Costed: enumerate every index candidate plus the sequential scan.
    best_spec = AccessSpec(kind="scan")
    best_cost, best_sel = _access_cost(best_spec, stats)
    for pred in predicates:
        match = _desc_match_eq(pred, desc, scope)
        if match is None:
            continue
        spec = AccessSpec(kind="eq", index=match[0], column=match[1],
                          pred=pred, value=match[2])
        cost, sel = _access_cost(spec, stats)
        if cost < best_cost:
            best_spec, best_cost, best_sel = spec, cost, sel
    for pred in predicates:
        match = _desc_match_range(pred, desc, scope)
        if match is None:
            continue
        index, column, lo, hi, lo_inc, hi_inc = match
        spec = AccessSpec(kind="range", index=index, column=column,
                          pred=pred, lo=lo, hi=hi,
                          lo_inc=lo_inc, hi_inc=hi_inc)
        cost, sel = _access_cost(spec, stats)
        if cost < best_cost:
            best_spec, best_cost, best_sel = spec, cost, sel
    node = _access_node(desc, best_spec, stats,
                        cost=best_cost, selectivity=best_sel)
    if best_spec.pred is not None:
        return node, [p for p in predicates if p is not best_spec.pred]
    return node, list(predicates)


def _access_node(desc: TableDesc, spec: AccessSpec,
                 stats: Optional[TableStats],
                 cost: Optional[float] = None,
                 selectivity: Optional[float] = None) -> PlanNode:
    if spec.kind == "eq":
        note = (f"SEARCH {desc.binding} USING INDEX "
                f"{spec.index} (=)")
        path = f"index {spec.index} (=)"
    elif spec.kind == "range":
        note = (f"SEARCH {desc.binding} USING INDEX "
                f"{spec.index} (range)")
        path = f"index {spec.index} (range)"
    else:
        note = f"SCAN {desc.binding}"
        path = "seq scan"
    node = PlanNode(desc=desc, note=note, access=spec, path_desc=path)
    if stats is None:
        return node
    node.costed = True
    node.chosen_by = "cost"
    node.selectivity = selectivity if selectivity is not None else 1.0
    node.est_rows = node.selectivity * stats.row_count
    pages = max(1, stats.page_count)
    node.seq_cost = pages * SEQ_PAGE_COST + stats.row_count * CPU_ROW_COST
    node.cost = cost if cost is not None else node.seq_cost
    if spec.kind == "scan":
        node.est_pages = pages
    else:
        node.est_pages = max(
            1, min(pages, round(_clamp01(node.selectivity) * pages)),
        )
    return node


def _access_cost(spec: AccessSpec,
                 stats: TableStats) -> Tuple[float, float]:
    """(cost, raw selectivity) of one access path under the model."""
    rows = stats.row_count
    pages = max(1, stats.page_count)
    if spec.kind == "scan":
        return pages * SEQ_PAGE_COST + rows * CPU_ROW_COST, 1.0
    if spec.kind == "eq":
        sel = stats.eq_selectivity(spec.column or "")
    else:
        lo = spec.lo[0] if spec.lo else None
        hi = spec.hi[0] if spec.hi else None
        sel = stats.range_selectivity(spec.column or "", lo, hi)
    matched = _clamp01(sel) * rows
    return (INDEX_PROBE_COST
            + matched * (ROW_FETCH_COST + CPU_ROW_COST)), sel


def _plan_join_node(desc: TableDesc, join, native: Optional[str],
                    stats: Optional[TableStats],
                    fully_costed: bool) -> PlanNode:
    if join is None:
        note = f"CROSS JOIN {desc.binding}"
        spec = JoinSpec(kind="cross")
        path = "cross join"
    else:
        pred, inner_col, outer_expr = join
        if native is not None:
            note = (f"SEARCH {desc.binding} USING INDEX "
                    f"{native} ({inner_col.name}=?)")
            spec = JoinSpec(kind="native", index=native, pred=pred,
                            inner_col=inner_col, outer_expr=outer_expr)
            path = f"index {native} join"
        else:
            note = (f"SEARCH {desc.binding} USING AUTOMATIC COVERING "
                    f"INDEX ({inner_col.name}=?)")
            spec = JoinSpec(kind="auto", pred=pred,
                            inner_col=inner_col, outer_expr=outer_expr)
            path = "automatic index join"
    node = PlanNode(desc=desc, note=note, join=spec, path_desc=path)
    if stats is None:
        return node
    node.costed = True
    node.chosen_by = "cost" if fully_costed else "heuristic"
    pages = max(1, stats.page_count)
    node.seq_cost = pages * SEQ_PAGE_COST + stats.row_count * CPU_ROW_COST
    if spec.kind == "cross":
        node.selectivity = 1.0
        node.est_rows = float(stats.row_count)
        node.est_pages = pages
        node.cost = node.seq_cost
    else:
        sel = stats.eq_selectivity(spec.inner_col.name)
        node.selectivity = sel
        node.est_rows = sel * stats.row_count
        node.est_pages = max(1, min(pages, round(_clamp01(sel) * pages)))
        node.cost = _join_probe_cost(stats, spec.inner_col.name,
                                     spec.kind == "native")
    return node


def _join_probe_cost(stats: Optional[TableStats], inner_col: str,
                     native: bool) -> float:
    """Per-probe cost of an inner join access, plus the one-off build
    cost of the automatic covering index when no native index fits."""
    if stats is None:
        return 0.0
    matched = _clamp01(stats.eq_selectivity(inner_col)) * stats.row_count
    cost = INDEX_PROBE_COST + matched * (ROW_FETCH_COST + CPU_ROW_COST)
    if not native:
        cost += (max(1, stats.page_count) * SEQ_PAGE_COST
                 + stats.row_count * CPU_ROW_COST)
    return cost


def _filtered_row_estimate(stats: Optional[TableStats],
                           preds: List[ast.Expr],
                           desc: TableDesc) -> float:
    if stats is None:
        return 0.0
    estimate = float(stats.row_count)
    for pred in preds:
        estimate *= _clamp01(_pred_selectivity(stats, pred, desc))
    return estimate


def _pred_selectivity(stats: TableStats, pred: ast.Expr,
                      desc: TableDesc) -> float:
    """Raw selectivity estimate of one single-table conjunct."""
    if isinstance(pred, ast.BinaryOp) and pred.op == "=":
        for col_side, val_side in ((pred.left, pred.right),
                                   (pred.right, pred.left)):
            if isinstance(col_side, ast.ColumnRef) \
                    and _is_constant(val_side):
                return stats.eq_selectivity(col_side.name)
    if isinstance(pred, ast.BinaryOp) \
            and pred.op in ("<", "<=", ">", ">="):
        for col_side, val_side, op in (
                (pred.left, pred.right, pred.op),
                (pred.right, pred.left, _flip(pred.op))):
            if isinstance(col_side, ast.ColumnRef) \
                    and _is_constant(val_side):
                value = _constant_value(val_side)
                if op in ("<", "<="):
                    return stats.range_selectivity(col_side.name,
                                                   None, value)
                return stats.range_selectivity(col_side.name, value, None)
    if isinstance(pred, ast.Between) and not pred.negated \
            and isinstance(pred.operand, ast.ColumnRef) \
            and _is_constant(pred.low) and _is_constant(pred.high):
        return stats.range_selectivity(
            pred.operand.name,
            _constant_value(pred.low), _constant_value(pred.high),
        )
    if isinstance(pred, ast.InList) and not pred.negated \
            and isinstance(pred.operand, ast.ColumnRef) \
            and all(_is_constant(item) for item in pred.items):
        values = {_constant_value(item) for item in pred.items}
        return min(1.0, len(values)
                   * stats.eq_selectivity(pred.operand.name))
    return 0.5


def _desc_scope(descs: List[TableDesc]) -> Scope:
    bindings: List[Tuple[str, str]] = []
    for desc in descs:
        for column in desc.columns:
            bindings.append((desc.binding, column))
    return Scope(bindings)


def _desc_leading_index(desc: TableDesc, column: str) -> Optional[str]:
    lowered = column.lower()
    for name, cols in desc.indexes:
        if cols and cols[0].lower() == lowered:
            return name
    return None


def _desc_match_eq(pred: ast.Expr, desc: TableDesc, scope: Scope):
    """(index name, column, constant) for ``col = <constant>`` preds."""
    if not (isinstance(pred, ast.BinaryOp) and pred.op == "="):
        return None
    for col_side, val_side in ((pred.left, pred.right),
                               (pred.right, pred.left)):
        if isinstance(col_side, ast.ColumnRef) \
                and scope.try_resolve(col_side) is not None \
                and _is_comparable_constant(val_side):
            name = col_side.name.lower()
            for index_name, cols in desc.indexes:
                if cols and cols[0].lower() == name:
                    return index_name, name, _constant_value(val_side)
    return None


def _desc_match_range(pred: ast.Expr, desc: TableDesc, scope: Scope):
    """(index, column, lo, hi, lo_inc, hi_inc) for range predicates.

    Mirrors the historical matcher exactly, including the subtlety that
    a comparison whose column resolves but has no leading index rejects
    the *predicate* outright rather than trying the flipped side.
    """
    ops = ("<", "<=", ">", ">=")
    if isinstance(pred, ast.Between) and not pred.negated:
        col = pred.operand
        if isinstance(col, ast.ColumnRef) \
                and scope.try_resolve(col) is not None \
                and _is_comparable_constant(pred.low) \
                and _is_comparable_constant(pred.high):
            index = _desc_leading_index(desc, col.name)
            if index is not None:
                return (index, col.name.lower(),
                        [_constant_value(pred.low)],
                        [_constant_value(pred.high)], True, True)
        return None
    if not (isinstance(pred, ast.BinaryOp) and pred.op in ops):
        return None
    for col_side, val_side, op in (
            (pred.left, pred.right, pred.op),
            (pred.right, pred.left, _flip(pred.op))):
        if isinstance(col_side, ast.ColumnRef) \
                and scope.try_resolve(col_side) is not None \
                and _is_comparable_constant(val_side):
            index = _desc_leading_index(desc, col_side.name)
            if index is None:
                return None
            column = col_side.name.lower()
            value = [_constant_value(val_side)]
            if op == "<":
                return index, column, None, value, True, False
            if op == "<=":
                return index, column, None, value, True, True
            if op == ">":
                return index, column, value, None, False, True
            return index, column, value, None, True, True
    return None


def _find_equi_join_desc(prefix: List[TableDesc], desc: TableDesc,
                         predicates: List[ast.Expr]):
    """An equi-conjunct linking ``desc`` to the joined prefix.

    Returns (predicate, inner_column_ref, outer_expr) or None.
    """
    prefix_scope = _desc_scope(prefix)
    table_scope = desc.scope()
    for pred in predicates:
        if not (isinstance(pred, ast.BinaryOp) and pred.op == "="):
            continue
        for inner_side, outer_side in ((pred.left, pred.right),
                                       (pred.right, pred.left)):
            if not isinstance(inner_side, ast.ColumnRef):
                continue
            if table_scope.try_resolve(inner_side) is None:
                continue
            if not _predicate_uses_only(outer_side, prefix_scope):
                continue
            return pred, inner_side, outer_side
    return None


# ---------------------------------------------------------------------------
# Static planning (planlint / golden-plan corpus)
# ---------------------------------------------------------------------------

def plan_select_static(select: ast.Select, schema,
                       stats: StatsProvider) -> SelectPlan:
    """Plan a SELECT from catalog metadata alone — nothing executes.

    ``schema`` is a :class:`repro.sql.semantic.SchemaProvider`; ``stats``
    a :class:`StatsProvider` (:class:`repro.sql.stats.DeclaredStats` for
    planlint and the golden-plan corpus).
    """
    descs, predicates = _descs_from_schema(select, schema)
    return plan_from(descs, predicates, stats.table_stats)


def render_plan(select: ast.Select, schema,
                stats: StatsProvider) -> List[str]:
    """The certifiable plan rendering: access + stage + COST lines.

    This is the text the golden-plan corpus pins and RQL110 diffs; it
    matches ``EXPLAIN SELECT`` output minus the SEMANTIC lines.
    """
    plan = plan_select_static(select, schema, stats)
    lines = plan.access_notes()
    if select.as_of is not None:
        lines.insert(0, "AS OF snapshot (Retro SPT + snapshot cache)")
    lines.extend(_stage_notes(select))
    lines.extend(plan.cost_notes())
    return lines


def _descs_from_schema(select: ast.Select, schema,
                       ) -> Tuple[List[TableDesc], List[ast.Expr]]:
    descs: List[TableDesc] = []
    filters: List[ast.Expr] = []

    def flatten(node) -> None:
        if node is None:
            return
        if isinstance(node, ast.Join):
            flatten(node.left)
            flatten(node.right)
            if node.condition is not None:
                filters.extend(conjuncts(node.condition))
            return
        if isinstance(node, ast.TableRef):
            columns = schema.table_columns(node.name)
            if columns is None:
                raise PlanError(f"no such table: {node.name}")
            descs.append(TableDesc(
                binding=node.binding,
                table=node.name,
                columns=[name for name, _type in columns],
                indexes=[(name, tuple(cols))
                         for name, cols in schema.table_indexes(node.name)],
                ordinal=len(descs),
            ))
            return
        raise PlanError(f"unsupported FROM node {type(node).__name__}")

    flatten(select.source)
    predicates = conjuncts(select.where) + filters
    return descs, predicates


# ---------------------------------------------------------------------------
# Execution context
# ---------------------------------------------------------------------------

class ExecutionContext:
    """What the planner needs from the database layer, per statement."""

    def open_table(self, name: str) -> TableAccess:
        raise NotImplementedError

    def open_indexes(self, table: TableAccess) -> List[IndexAccess]:
        raise NotImplementedError

    @property
    def functions(self) -> Dict[str, Callable[..., SqlValue]]:
        raise NotImplementedError

    def table_stats(self, name: str) -> Optional[TableStats]:
        """ANALYZE statistics for ``name``, or None (heuristic plans).

        The database context reads ``__rql_stats`` honoring the
        statement's ``AS OF`` pin; bare contexts plan heuristically.
        """
        return None

    def note_index_creation(self, seconds: float) -> None:
        """Report ephemeral (automatic) index build time."""

    def note_query_eval(self, seconds: float) -> None:
        """Report query evaluation time (excl. auto-index builds)."""

    @property
    def clock(self) -> Callable[[], float]:
        """Monotonic clock for planner timings.

        Contexts carrying a metrics sink return the sink's injectable
        clock, so every duration a query produces is deterministic
        under test.
        """
        return time.perf_counter


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_select(select: ast.Select, ctx: ExecutionContext) -> ResultSet:
    """Plan and execute a SELECT, returning a materialized result."""
    clock = ctx.clock
    started = clock()
    planner = _SelectPlanner(select, ctx)
    result = planner.run()
    ctx.note_query_eval(clock() - started
                        - planner.index_build_seconds)
    return result


def explain_select(select: ast.Select, ctx: ExecutionContext) -> List[str]:
    """Access-path, COST and SEMANTIC lines for a SELECT, without
    executing it.

    Mirrors SQLite's EXPLAIN QUERY PLAN at a coarse grain: one line per
    table access (scan / index search / automatic covering index),
    pipeline stages (aggregate, distinct, sort, limit), then one COST
    line per plan step and the rqlint semantic summary.
    """
    planner = _SelectPlanner(select, ctx)
    # Building the pipeline records the notes; the generators are never
    # consumed, so nothing executes (auto-index builds happen lazily).
    planner.columns_and_rows()
    notes = list(planner.plan_notes)
    if select.as_of is not None:
        notes.insert(0, "AS OF snapshot (Retro SPT + snapshot cache)")
    notes.extend(_stage_notes(select))
    if planner.plan is not None:
        notes.extend(planner.plan.cost_notes())
    notes.extend(_semantic_notes(select, ctx))
    return notes


def _stage_notes(select: ast.Select) -> List[str]:
    """Pipeline-stage lines shared by EXPLAIN and the static rendering."""
    notes: List[str] = []
    if select.group_by or any(
            item.expr is not None and contains_aggregate(item.expr)
            for item in select.items if not item.is_star):
        notes.append("AGGREGATE (hash group-by)")
    if select.distinct:
        notes.append("DISTINCT (hash)")
    if select.order_by:
        notes.append("ORDER BY (sort)")
    if select.limit is not None or select.offset is not None:
        notes.append("LIMIT/OFFSET")
    return notes


def _semantic_notes(select: ast.Select, ctx: ExecutionContext) -> List[str]:
    """rqlint semantic summary lines appended to EXPLAIN output.

    Resolution is static (catalog metadata only, nothing executes).  A
    query the planner accepts but the resolver cannot summarize is not
    an EXPLAIN failure — the summary is simply omitted.
    """
    from repro.analysis.query.mergeclass import classify_select
    from repro.sql.semantic import ContextSchema, resolve_select
    try:
        summary = resolve_select(select, ContextSchema(ctx))
        merge_class, reason = classify_select(summary)
    except ReproError:
        return []
    notes: List[str] = []
    for table in summary.tables:
        columns = ", ".join(summary.read_columns.get(table, ()))
        notes.append(f"SEMANTIC: reads {table}({columns})")
    for predicate in summary.predicates:
        if not predicate.pushable:
            notes.append(f"SEMANTIC: join predicate {predicate.text}")
        elif predicate.indexed_by is not None:
            notes.append(f"SEMANTIC: pushdown {predicate.text} "
                         f"[index {predicate.indexed_by}]")
        elif predicate.index_candidate is not None:
            table, column = predicate.index_candidate
            notes.append(f"SEMANTIC: pushdown {predicate.text} "
                         f"[full scan; index candidate "
                         f"{table}({column})]")
        else:
            notes.append(f"SEMANTIC: pushdown {predicate.text}")
    notes.append(f"SEMANTIC: merge class {merge_class} ({reason})")
    return notes


def run_select_streaming(select: ast.Select, ctx: ExecutionContext,
                         on_row: Callable[[Sequence[SqlValue]], None]) -> List[str]:
    """Execute a SELECT, invoking ``on_row`` per row (UDF callback path).

    Returns the output column names.  This mirrors ``sqlite3_exec``'s
    row-callback protocol the RQL implementation builds on.
    """
    planner = _SelectPlanner(select, ctx)
    columns, rows = planner.columns_and_rows()
    for row in rows:
        on_row(row)
    return columns


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

class _SelectPlanner:
    def __init__(self, select: ast.Select, ctx: ExecutionContext) -> None:
        self.select = select
        self.ctx = ctx
        self.index_build_seconds = 0.0
        #: human-readable access-path decisions (EXPLAIN output)
        self.plan_notes: List[str] = []
        #: the plan tree (None until FROM is planned; SELECT 1 has none)
        self.plan: Optional[SelectPlan] = None

    # -- public -----------------------------------------------------------

    def run(self) -> ResultSet:
        columns, rows = self.columns_and_rows()
        return ResultSet(columns, list(rows))

    def columns_and_rows(self) -> Tuple[List[str], Iterator[Row]]:
        select = self.select
        tables, join_filters = self._resolve_from(select.source)
        predicates = conjuncts(select.where) + join_filters

        if tables:
            ordered, source_rows, remaining = self._plan_access(
                tables, predicates,
            )
            scope = _scope_for(ordered)
        else:
            ordered = []
            source_rows = iter([()])
            remaining = predicates
            scope = Scope([])

        compiler = ExpressionCompiler(scope, self.ctx.functions)

        if remaining:
            filters = [compiler.compile(p) for p in remaining]
            source_rows = _filtered(source_rows, filters)

        items = self._expand_stars(select.items, scope)
        aggregated = bool(select.group_by) or any(
            item.expr is not None and contains_aggregate(item.expr)
            for item in items
        ) or (select.having is not None
              and contains_aggregate(select.having))

        if aggregated:
            columns, rows = self._run_aggregate(items, source_rows,
                                                scope, compiler)
        else:
            columns, rows = self._run_plain(items, source_rows, compiler)

        rows = self._apply_limit(rows)
        return columns, rows

    # -- FROM resolution -----------------------------------------------------------

    def _resolve_from(self, source) -> Tuple[List[BoundTable], List[ast.Expr]]:
        tables: List[BoundTable] = []
        filters: List[ast.Expr] = []
        self._flatten_from(source, tables, filters)
        seen: Dict[str, bool] = {}
        for table in tables:
            key = table.binding.lower()
            if key in seen:
                raise PlanError(f"duplicate table binding: {table.binding}")
            seen[key] = True
        return tables, filters

    def _flatten_from(self, node, tables: List[BoundTable],
                      filters: List[ast.Expr]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Join):
            self._flatten_from(node.left, tables, filters)
            self._flatten_from(node.right, tables, filters)
            if node.condition is not None:
                filters.extend(conjuncts(node.condition))
            return
        if isinstance(node, ast.TableRef):
            access = self.ctx.open_table(node.name)
            indexes = self.ctx.open_indexes(access)
            tables.append(BoundTable(
                binding=node.binding, access=access, indexes=indexes,
            ))
            return
        raise PlanError(f"unsupported FROM node {type(node).__name__}")

    # -- plan execution -----------------------------------------------------------

    def _plan_access(self, tables: List[BoundTable],
                     predicates: List[ast.Expr]):
        """Plan the FROM clause, then execute the plan steps.

        Returns (ordered_tables, row_iterator, residual_predicates);
        rows are concatenations of the ordered tables' columns.
        """
        descs = [
            TableDesc(
                binding=table.binding,
                table=table.access.info.name,
                columns=list(table.column_names),
                indexes=[(ix.info.name, tuple(ix.info.columns))
                         for ix in table.indexes],
                ordinal=position,
            )
            for position, table in enumerate(tables)
        ]
        plan = plan_from(descs, predicates, self.ctx.table_stats)
        self.plan = plan

        ordered: List[BoundTable] = []
        first_step = plan.steps[0]
        bound = tables[first_step.desc.ordinal]
        self.plan_notes.append(first_step.note)
        rows = self._exec_access(bound, first_step.access)
        ordered.append(bound)
        rows = self._apply_pushed(ordered, rows, first_step.pushed)

        for step in plan.steps[1:]:
            bound = tables[step.desc.ordinal]
            self.plan_notes.append(step.note)
            rows = self._exec_join(ordered, bound, step.join, rows)
            ordered.append(bound)
            rows = self._apply_pushed(ordered, rows, step.pushed)
        return ordered, rows, list(plan.residual)

    def _apply_pushed(self, ordered: List[BoundTable], rows,
                      pushed: List[ast.Expr]):
        """Filter with the predicates the plan pushed down to this
        prefix (filter before joining further)."""
        if not pushed:
            return rows
        scope = _scope_for(ordered)
        compiler = ExpressionCompiler(scope, self.ctx.functions)
        filters = [compiler.compile(p) for p in pushed]
        return _filtered(rows, filters)

    def _index_named(self, table: BoundTable, name: str) -> IndexAccess:
        for index in table.indexes:
            if index.info.name == name:
                return index
        raise PlanError(f"planned index vanished: {name}")

    def _exec_access(self, table: BoundTable, spec: Optional[AccessSpec]):
        """Row generator for the planned outer-table access path."""
        if spec is None or spec.kind == "scan":
            return (row for _, row in table.access.scan())
        if spec.kind == "eq":
            index = self._index_named(table, spec.index)

            def rows_eq(index=index, value=spec.value):
                for rowid in index.lookup_equal([value]):
                    row = table.access.get(rowid)
                    if row is not None:
                        yield row
            return rows_eq()
        index = self._index_named(table, spec.index)

        def rows_range(index=index, lo=spec.lo, hi=spec.hi,
                       lo_inc=spec.lo_inc, hi_inc=spec.hi_inc):
            for rowid in index.lookup_range(
                    lo, hi, lo_inclusive=lo_inc,
                    hi_inclusive=hi_inc):
                row = table.access.get(rowid)
                if row is not None:
                    yield row
        return rows_range()

    def _exec_join(self, prefix: List[BoundTable], table: BoundTable,
                   spec: Optional[JoinSpec], prefix_rows):
        """Join one more table onto the prefix rows per the plan."""
        if spec is None or spec.kind == "cross":
            # Cross join; predicates filter afterwards.
            def cross():
                inner_rows = [row for _, row in table.access.scan()]
                for left in prefix_rows:
                    for right in inner_rows:
                        yield left + right
            return cross()

        prefix_scope = _scope_for(prefix)
        outer_eval = ExpressionCompiler(
            prefix_scope, self.ctx.functions,
        ).compile(spec.outer_expr)

        if spec.kind == "native":
            native = self._index_named(table, spec.index)

            def indexed():
                for left in prefix_rows:
                    key = outer_eval(left)
                    if key is None:
                        continue
                    for rowid in native.lookup_equal([key]):
                        row = table.access.get(rowid)
                        if row is not None:
                            yield left + row
            return indexed()

        # Automatic (ephemeral covering) index on the inner join column —
        # a real B+tree, as SQLite builds, so its creation cost carries
        # the realistic serialization work (Figure 9's dominant cost).
        from repro.sql.executor import EphemeralIndex

        column_pos = table.access.info.column_index(spec.inner_col.name)

        def auto_indexed():
            clock = self.ctx.clock
            started = clock()
            auto_index = EphemeralIndex()
            for _, row in table.access.scan():
                auto_index.add(row[column_pos], row)
            elapsed = clock() - started
            self.index_build_seconds += elapsed
            self.ctx.note_index_creation(elapsed)
            for left in prefix_rows:
                key = outer_eval(left)
                if key is None:
                    continue
                for row in auto_index.lookup(key):
                    yield left + row
        return auto_indexed()

    # -- star expansion ------------------------------------------------------------

    def _expand_stars(self, items: List[ast.SelectItem],
                      scope: Scope) -> List[ast.SelectItem]:
        out: List[ast.SelectItem] = []
        for item in items:
            if not item.is_star:
                out.append(item)
                continue
            if item.star_table is not None:
                positions = scope.positions_for_binding(item.star_table)
                if not positions:
                    raise PlanError(f"no such table: {item.star_table}")
            else:
                positions = list(range(len(scope)))
            for pos in positions:
                binding, column = scope.bindings[pos]
                out.append(ast.SelectItem(
                    expr=ast.ColumnRef(table=binding, name=column),
                    alias=column,
                ))
        if not out:
            raise PlanError("SELECT list is empty after star expansion")
        return out

    # -- plain (non-aggregate) pipeline ------------------------------------------------

    def _run_plain(self, items: List[ast.SelectItem], source_rows,
                   compiler: ExpressionCompiler):
        select = self.select
        evaluators = [compiler.compile(item.expr) for item in items]
        columns = [_column_name(item, i) for i, item in enumerate(items)]

        order_evals = self._order_evaluators(items, compiler)

        def produce() -> Iterator[Row]:
            if order_evals is None:
                if select.distinct:
                    seen = set()
                    for src in source_rows:
                        row = tuple(e(src) for e in evaluators)
                        if row in seen:
                            continue
                        seen.add(row)
                        yield row
                else:
                    for src in source_rows:
                        yield tuple(e(src) for e in evaluators)
                return
            keyed: List[Tuple[tuple, Row]] = []
            seen = set()
            for src in source_rows:
                row = tuple(e(src) for e in evaluators)
                if select.distinct:
                    if row in seen:
                        continue
                    seen.add(row)
                keys = tuple(e(src) for e, _ in order_evals)
                keyed.append((keys, row))
            yield from _sorted_rows(keyed, order_evals)
        return columns, produce()

    def _order_evaluators(self, items: List[ast.SelectItem],
                          compiler: ExpressionCompiler):
        """Compile ORDER BY items (against the same scope as ``compiler``).

        Returns a list of (evaluator, descending) or None when no ORDER
        BY.  Aliases and 1-based positions resolve to select item exprs.
        """
        select = self.select
        if not select.order_by:
            return None
        out = []
        for order in select.order_by:
            expr = self._resolve_order_expr(order.expr, items)
            out.append((compiler.compile(expr), order.descending))
        return out

    def _resolve_order_expr(self, expr: ast.Expr,
                            items: List[ast.SelectItem]) -> ast.Expr:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(items):
                raise PlanError(f"ORDER BY position {position} out of range")
            return items[position - 1].expr  # type: ignore[return-value]
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for item in items:
                if item.alias and item.alias.lower() == expr.name.lower():
                    return item.expr  # type: ignore[return-value]
        return expr

    # -- aggregate pipeline -----------------------------------------------------------

    def _run_aggregate(self, items: List[ast.SelectItem], source_rows,
                       scope: Scope, compiler: ExpressionCompiler):
        select = self.select
        group_exprs = list(select.group_by)
        # Collect aggregate calls from every post-aggregation expression.
        agg_calls: List[ast.FunctionCall] = []

        def collect(expr: Optional[ast.Expr]) -> None:
            if expr is None:
                return
            for node in walk(expr):
                if isinstance(node, ast.FunctionCall) \
                        and node.is_aggregate_name() \
                        and node not in agg_calls:
                    agg_calls.append(node)

        having = select.having
        if having is not None:
            # HAVING may reference select-list aliases (SQLite allows it).
            having = _resolve_alias_refs(having, items)

        for item in items:
            collect(item.expr)
        collect(having)
        for order in select.order_by:
            collect(_resolve_alias_refs(order.expr, items))

        for call in agg_calls:
            if not is_aggregate(call.name):
                raise PlanError(f"no such aggregate: {call.name}")

        group_evals = [compiler.compile(g) for g in group_exprs]
        agg_arg_evals = []
        for call in agg_calls:
            if call.star:
                agg_arg_evals.append(lambda row: 1)
            elif len(call.args) == 1:
                agg_arg_evals.append(compiler.compile(call.args[0]))
            else:
                raise PlanError(
                    f"aggregate {call.name}() takes exactly one argument"
                )

        # Substitution mapping into the aggregated row:
        # positions [0, len(group)) are group keys, then aggregates.
        mapping: List[Tuple[ast.Expr, PostAggRef]] = []
        for i, g in enumerate(group_exprs):
            display = g.name if isinstance(g, ast.ColumnRef) else ""
            mapping.append((g, PostAggRef(i, display)))
        for j, call in enumerate(agg_calls):
            display = f"{call.name.upper()}(*)" if call.star \
                else f"{call.name.upper()}()"
            mapping.append((call, PostAggRef(len(group_exprs) + j, display)))

        post_items = [
            ast.SelectItem(expr=_substitute(item.expr, mapping),
                           alias=item.alias)
            for item in items
        ]
        post_scope = Scope([("", f"#{i}") for i in range(len(mapping))])
        post_compiler = ExpressionCompiler(post_scope, self.ctx.functions)
        self._check_grouped(post_items, group_exprs)

        evaluators = [post_compiler.compile(item.expr)
                      for item in post_items]
        columns = [_column_name(item, i)
                   for i, item in enumerate(post_items)]

        having_eval = None
        if having is not None:
            having_eval = post_compiler.compile(
                _substitute(having, mapping)
            )
        order_evals = None
        if select.order_by:
            order_evals = []
            for order in select.order_by:
                expr = self._resolve_order_expr(order.expr, post_items)
                expr = _substitute(expr, mapping)
                order_evals.append(
                    (post_compiler.compile(expr), order.descending)
                )

        def produce() -> Iterator[Row]:
            groups: Dict[tuple, list] = {}
            for src in source_rows:
                key = tuple(g(src) for g in group_evals)
                aggs = groups.get(key)
                if aggs is None:
                    aggs = [make_aggregate(c.name, c.distinct)
                            for c in agg_calls]
                    groups[key] = aggs
                for agg, arg in zip(aggs, agg_arg_evals):
                    agg.step(arg(src))
            if not groups and not group_exprs:
                groups[()] = [make_aggregate(c.name, c.distinct)
                              for c in agg_calls]
            out: List[Tuple[tuple, Row]] = []
            seen = set()
            for key, aggs in groups.items():
                agg_row = tuple(key) + tuple(a.result() for a in aggs)
                if having_eval is not None and \
                        not is_true(having_eval(agg_row)):
                    continue
                row = tuple(e(agg_row) for e in evaluators)
                if select.distinct:
                    if row in seen:
                        continue
                    seen.add(row)
                if order_evals is None:
                    out.append(((), row))
                else:
                    keys = tuple(e(agg_row) for e, _ in order_evals)
                    out.append((keys, row))
            if order_evals is None:
                for _, row in out:
                    yield row
            else:
                yield from _sorted_rows(out, order_evals)
        return columns, produce()

    def _check_grouped(self, post_items: List[ast.SelectItem],
                       group_exprs: List[ast.Expr]) -> None:
        for item in post_items:
            for node in walk(item.expr):
                if isinstance(node, ast.ColumnRef):
                    raise PlanError(
                        f"column {node.display()} is neither grouped "
                        f"nor aggregated"
                    )

    # -- limit --------------------------------------------------------------------

    def _apply_limit(self, rows: Iterator[Row]) -> Iterator[Row]:
        select = self.select
        if select.limit is None and select.offset is None:
            return rows
        limit = _constant_int(select.limit, "LIMIT")
        offset = _constant_int(select.offset, "OFFSET") or 0

        def limited() -> Iterator[Row]:
            skipped = 0
            produced = 0
            for row in rows:
                if skipped < offset:
                    skipped += 1
                    continue
                if limit is not None and produced >= limit:
                    return
                produced += 1
                yield row
        return limited()


# ---------------------------------------------------------------------------
# DML access planning (index-assisted row location for DELETE/UPDATE)
# ---------------------------------------------------------------------------

def scan_for_modify(table: TableAccess, indexes: List[IndexAccess],
                    where: Optional[ast.Expr],
                    functions: Dict[str, Callable[..., SqlValue]]):
    """Yield (rowid, row) pairs matching ``where``, via an index when one
    fits.  Used by DELETE and UPDATE, which must not mutate mid-scan —
    callers materialize before writing."""
    bound = BoundTable(binding=table.info.name, access=table,
                       indexes=indexes)
    scope = _scope_for([bound])
    compiler = ExpressionCompiler(scope, functions)
    predicates = conjuncts(where)
    for pred in predicates:
        match = _match_index_equality(pred, bound, scope)
        if match is not None:
            index, value = match
            rest = [compiler.compile(p) for p in predicates if p is not pred]

            def rows_eq():
                for rowid in index.lookup_equal([value]):
                    row = table.get(rowid)
                    if row is not None and \
                            all(is_true(f(row)) for f in rest):
                        yield rowid, row
            return rows_eq()
    for pred in predicates:
        match = _match_index_range(pred, bound, scope)
        if match is not None:
            index, lo, hi, lo_inc, hi_inc = match
            rest = [compiler.compile(p) for p in predicates if p is not pred]

            def rows_range():
                for rowid in index.lookup_range(lo, hi, lo_inclusive=lo_inc,
                                                hi_inclusive=hi_inc):
                    row = table.get(rowid)
                    if row is not None and \
                            all(is_true(f(row)) for f in rest):
                        yield rowid, row
            return rows_range()
    filters = [compiler.compile(p) for p in predicates]

    def rows_scan():
        for rowid, row in table.scan():
            if all(is_true(f(row)) for f in filters):
                yield rowid, row
    return rows_scan()


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _scope_for(tables: List[BoundTable]) -> Scope:
    bindings: List[Tuple[str, str]] = []
    for table in tables:
        for column in table.column_names:
            bindings.append((table.binding, column))
    return Scope(bindings)


def _predicate_uses_only(expr: ast.Expr, scope: Scope) -> bool:
    for node in walk(expr):
        if isinstance(node, ast.ColumnRef):
            if scope.try_resolve(node) is None:
                return False
    return True


def _is_constant(expr: ast.Expr) -> bool:
    return not any(isinstance(node, (ast.ColumnRef, PostAggRef))
                   for node in walk(expr))


def _is_comparable_constant(expr: ast.Expr) -> bool:
    """Constant, and usable as an index key: a comparison against NULL
    is never true, so it must fall through to the scan filter (which
    evaluates it to empty) rather than probe the index — NULL keys are
    physically present in the tree but match no predicate."""
    return _is_constant(expr) and _constant_value(expr) is not None


def _constant_value(expr: ast.Expr,
                    functions: Optional[Dict] = None) -> SqlValue:
    compiler = ExpressionCompiler(Scope([]), functions or {})
    return compiler.compile(expr)(())


def _constant_int(expr: Optional[ast.Expr], label: str) -> Optional[int]:
    if expr is None:
        return None
    if not _is_constant(expr):
        raise PlanError(f"{label} must be a constant")
    value = _constant_value(expr)
    if value is None:
        return None
    return int(value)


def _match_index_equality(pred: ast.Expr, table: BoundTable, scope: Scope):
    """index, constant for predicates like col = <constant>."""
    if not (isinstance(pred, ast.BinaryOp) and pred.op == "="):
        return None
    for col_side, val_side in ((pred.left, pred.right),
                               (pred.right, pred.left)):
        if isinstance(col_side, ast.ColumnRef) \
                and scope.try_resolve(col_side) is not None \
                and _is_comparable_constant(val_side):
            name = col_side.name.lower()
            for index in table.indexes:
                if index.info.columns and \
                        index.info.columns[0].lower() == name:
                    return index, _constant_value(val_side)
    return None


def _match_index_range(pred: ast.Expr, table: BoundTable, scope: Scope):
    """index, lo, hi, lo_inc, hi_inc for range predicates on an index."""
    ops = {"<": (None, True), "<=": (None, True),
           ">": (True, None), ">=": (True, None)}
    if isinstance(pred, ast.Between) and not pred.negated:
        col = pred.operand
        if isinstance(col, ast.ColumnRef) \
                and scope.try_resolve(col) is not None \
                and _is_comparable_constant(pred.low) \
                and _is_comparable_constant(pred.high):
            index = _leading_index(table, col.name)
            if index is not None:
                return (index, [_constant_value(pred.low)],
                        [_constant_value(pred.high)], True, True)
        return None
    if not (isinstance(pred, ast.BinaryOp) and pred.op in ops):
        return None
    for col_side, val_side, op in (
            (pred.left, pred.right, pred.op),
            (pred.right, pred.left, _flip(pred.op))):
        if isinstance(col_side, ast.ColumnRef) \
                and scope.try_resolve(col_side) is not None \
                and _is_comparable_constant(val_side):
            index = _leading_index(table, col_side.name)
            if index is None:
                return None
            value = [_constant_value(val_side)]
            if op == "<":
                return index, None, value, True, False
            if op == "<=":
                return index, None, value, True, True
            if op == ">":
                return index, value, None, False, True
            return index, value, None, True, True
    return None


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _leading_index(table: BoundTable, column: str) -> Optional[IndexAccess]:
    lowered = column.lower()
    for index in table.indexes:
        if index.info.columns and index.info.columns[0].lower() == lowered:
            return index
    return None


def _filtered(rows: Iterator[Row], filters) -> Iterator[Row]:
    for row in rows:
        if all(is_true(f(row)) for f in filters):
            yield row


def _sorted_rows(keyed: List[Tuple[tuple, Row]], order_evals) -> Iterator[Row]:
    descending = [d for _, d in order_evals]

    def sort_key(entry: Tuple[tuple, Row]):
        keys = entry[0]
        out = []
        for value, desc in zip(keys, descending):
            rank, val = _negatable_key(value)
            if desc:
                out.append((-rank, _Reversed(val)))
            else:
                out.append((rank, val))
        return tuple(out)

    keyed.sort(key=sort_key)
    for _, row in keyed:
        yield row


def _negatable_key(value: SqlValue):
    from repro.sql.types import sort_key as base_key

    rank, val = base_key(value)
    return rank, val


class _Reversed:
    """Wrapper inverting comparisons, for DESC sort of mixed types."""

    __slots__ = ("value",)

    def __init__(self, value: SqlValue) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        if self.value == other.value:
            return False
        try:
            return other.value < self.value
        except TypeError:
            return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _resolve_alias_refs(expr: ast.Expr,
                        items: List[ast.SelectItem]) -> ast.Expr:
    """Replace bare column refs matching select aliases with their expr
    (SQLite allows aliases in HAVING and ORDER BY)."""
    aliases = {
        item.alias.lower(): item.expr
        for item in items
        if item.alias and item.expr is not None
    }
    if not aliases:
        return expr

    def mapper(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.ColumnRef) and node.table is None:
            replacement = aliases.get(node.name.lower())
            if replacement is not None:
                return replacement
        return node

    return _rewrite(expr, mapper)


def _rewrite(expr: ast.Expr, mapper) -> ast.Expr:
    """Bottom-up rewrite: apply ``mapper`` to every node."""
    replaced = mapper(expr)
    if replaced is not expr:
        return replaced
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite(expr.operand, mapper))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _rewrite(expr.left, mapper),
                            _rewrite(expr.right, mapper))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_rewrite(expr.operand, mapper), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(_rewrite(expr.operand, mapper),
                          [_rewrite(i, mapper) for i in expr.items],
                          expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(_rewrite(expr.operand, mapper),
                           _rewrite(expr.low, mapper),
                           _rewrite(expr.high, mapper), expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(_rewrite(expr.operand, mapper),
                        _rewrite(expr.pattern, mapper), expr.negated)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name,
                                [_rewrite(a, mapper) for a in expr.args],
                                expr.distinct, expr.star)
    if isinstance(expr, ast.CaseExpr):
        return ast.CaseExpr(
            _rewrite(expr.operand, mapper) if expr.operand else None,
            [(_rewrite(c, mapper), _rewrite(r, mapper))
             for c, r in expr.branches],
            _rewrite(expr.else_result, mapper)
            if expr.else_result else None,
        )
    return expr


def _substitute(expr: ast.Expr, mapping) -> ast.Expr:
    """Replace any node equal to a mapping key with its PostAggRef."""
    for original, replacement in mapping:
        if expr == original:
            return replacement
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _substitute(expr.operand, mapping))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _substitute(expr.left, mapping),
                            _substitute(expr.right, mapping))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_substitute(expr.operand, mapping), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(_substitute(expr.operand, mapping),
                          [_substitute(i, mapping) for i in expr.items],
                          expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(_substitute(expr.operand, mapping),
                           _substitute(expr.low, mapping),
                           _substitute(expr.high, mapping), expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(_substitute(expr.operand, mapping),
                        _substitute(expr.pattern, mapping), expr.negated)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name,
                                [_substitute(a, mapping) for a in expr.args],
                                expr.distinct, expr.star)
    if isinstance(expr, ast.CaseExpr):
        return ast.CaseExpr(
            _substitute(expr.operand, mapping) if expr.operand else None,
            [(_substitute(c, mapping), _substitute(r, mapping))
             for c, r in expr.branches],
            _substitute(expr.else_result, mapping)
            if expr.else_result else None,
        )
    return expr


def _column_name(item: ast.SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, PostAggRef) and expr.display:
        return expr.display
    if isinstance(expr, ast.FunctionCall):
        return f"{expr.name.upper()}(*)" if expr.star \
            else f"{expr.name.upper()}()"
    return f"column{position + 1}"
