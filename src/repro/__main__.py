"""``python -m repro`` — launch the RQL shell."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
