"""Figure 12 — single cold/hot iteration: CollateData vs
AggregateDataInTable on Qq_agg.

Paper claims: AggT's cold iteration is more expensive (it builds the
result-table index, and its inserts maintain that index); its hot
iterations are more expensive too (an index probe per Qq record plus
inserts/updates, vs CollateData's plain inserts).
"""

from repro.bench import fig12_checks, print_figure, run_fig12, save_figure


def test_fig12_iteration_collate_vs_aggtable(benchmark):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    fig12_checks(result)
