"""Ablation — incremental SPT derivation (paper Section 7 future work).

"Our future work includes performance optimizations for RQL programs
exploring how computations can be shared across multiple snapshots."
One such optimization implemented here: when an RQL query iterates
consecutive snapshots, SPT(S+1) is derived from SPT(S) by refreshing
only the mappings that expire — cost proportional to diff(S, S+1)
instead of a fresh ~n log n Skippy scan per iteration.
"""

from repro.bench import QQ_IO, print_figure
from repro.bench.figures import FigureResult, _env_fig6, OLD_START, INTERVAL
from repro.bench.report import save_figure
from repro.workloads import UW30


def run_ablation_incremental_spt():
    env = _env_fig6(UW30)
    retro = env.session.db.engine.retro
    qs = env.qs_interval(OLD_START, INTERVAL)
    series = {}
    try:
        for mode in ("full rebuild (paper)", "incremental advance"):
            retro.incremental_spt = mode.startswith("incremental")
            retro._spt_cache = None
            env.clear_snapshot_cache()
            result = env.session.aggregate_data_in_variable(
                qs, QQ_IO, "abl_ispt", "avg",
            )
            iterations = result.metrics.iterations
            hot = iterations[1:]
            series[mode] = [(
                "totals", {
                    "spt_entries_total": float(sum(
                        i.spt_entries_scanned for i in iterations)),
                    "spt_entries_hot_mean": sum(
                        i.spt_entries_scanned for i in hot) / len(hot),
                    "spt_seconds_total": sum(
                        i.spt_build_seconds for i in iterations),
                    "avg_result": 1.0,  # value equality checked below
                },
            )]
        results = {}
        for mode in series:
            retro.incremental_spt = mode.startswith("incremental")
            retro._spt_cache = None
            env.session.aggregate_data_in_variable(
                qs, QQ_IO, "abl_ispt_check", "avg",
            )
            results[mode] = env.session.execute(
                'SELECT * FROM "abl_ispt_check"').scalar()
        assert len(set(results.values())) == 1, results
    finally:
        retro.incremental_spt = False
        retro._spt_cache = None
    return FigureResult(
        figure="Ablation incremental SPT",
        title="SPT construction per RQL iteration: full Skippy rebuild "
              "vs incremental advance (future-work optimization)",
        series=series,
    )


def test_ablation_incremental_spt(benchmark):
    result = benchmark.pedantic(run_ablation_incremental_spt, rounds=1,
                                iterations=1)
    save_figure(result)
    print_figure(result)
    full = result.series["full rebuild (paper)"][0][1]
    inc = result.series["incremental advance"][0][1]
    assert inc["spt_entries_hot_mean"] < full["spt_entries_hot_mean"]
    assert inc["spt_entries_total"] < full["spt_entries_total"]
