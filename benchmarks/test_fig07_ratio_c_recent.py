"""Figure 7 — ratio C for intervals of recent snapshots.

Paper claim: as the interval start moves toward Slast, snapshots share
pages with the current (memory-resident) database, so both the measured
RQL cost and the all-cold baseline drop sharply.
"""

from repro.bench import fig7_checks, print_figure, run_fig7, save_figure


def test_fig07_ratio_c_recent(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    fig7_checks(result)
