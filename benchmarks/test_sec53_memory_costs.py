"""Section 5.3 — memory costs: CollateData vs CollateDataIntoIntervals
result tables under UW7.5 / UW15 / UW30 / UW60.

Paper claims: the interval representation is dramatically more compact
(75M rows / >3GB collated vs 1.86M-4.4M rows / 89-204MB as intervals);
its size grows with the update volume but sub-proportionally; the
mechanism needs ~50% additional memory for its index; CollateData's
size depends only on the Qq output, not the workload.
"""

from repro.bench import print_figure, run_sec53, save_figure, sec53_checks


def test_sec53_memory_costs(benchmark):
    result = benchmark.pedantic(run_sec53, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    sec53_checks(result)
