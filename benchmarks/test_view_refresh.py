"""Materialized-view refresh: delta vs full Pagelog traffic.

One view built over a growing history with **sparse updates**: most
trailing snapshots touch only an unrelated table, a couple touch the
view's read table.  At each history length N ∈ {16, 64, 256} two
identical sessions refresh the same view to the latest snapshot — one
incrementally (the planner picks delta against the Maplog diff), one
with a forced FULL rebuild over ``1..N``.

The recorded metric is the refresh's Pagelog page reads (the paper's
archived-page traffic), taken from the retro manager's metrics sink.
The full rebuild must re-read old snapshots, whose pages have been
archived by later updates, so its Pagelog reads grow with N; the delta
refresh only evaluates the trailing snapshots and must do **strictly
fewer** Pagelog reads at every N — that inequality is the test's
acceptance, the absolute numbers land in
``benchmarks/results/view_refresh.txt`` as a trajectory for later PRs.
"""

import time

from repro.bench import print_figure
from repro.bench.figures import FigureResult
from repro.bench.report import save_figure
from repro.core import RQLSession
from repro.sql.database import Database
from repro.storage.disk import SimulatedDisk

SNAPSHOT_COUNTS = (16, 64, 256)
TAIL = 8  # snapshots declared after the view was built
#: stored-row shape: the view table stays group-sized however long the
#: history gets, so the measurement isolates snapshot *reads* (a concat
#: view would grow quadratically with N and swamp the signal)
QQ = "SELECT grp, val FROM events"
ARG = "(val, sum)"

FIXED_CLOCK = lambda: "2026-01-01 00:00:00"  # noqa: E731


def _build_history(total: int) -> RQLSession:
    """``total`` snapshots; the view is built ``TAIL`` snapshots ago.

    The trailing snapshots are sparse: two touch ``events``, the rest
    only ``noise`` — the shape where incremental maintenance pays.
    The history is built on explicit disks and the session reopened
    before measuring, so the refresh runs against a **cold page cache**
    and archived reads actually hit the Pagelog (the initial build
    would otherwise have warmed every page the full rebuild needs).
    """
    disk, aux = SimulatedDisk(4096), SimulatedDisk(4096)
    session = RQLSession(db=Database(disk=disk, aux_disk=aux),
                         clock=FIXED_CLOCK, workers=1)
    session.execute("CREATE TABLE events (grp INTEGER, val INTEGER)")
    session.execute("CREATE TABLE noise (x INTEGER)")
    head = total - TAIL
    for sid in range(1, head + 1):
        if sid % 2 == 0:  # overwrite so old pages get archived
            session.execute(
                f"UPDATE events SET val = val + 1 WHERE grp = {sid % 3}")
        else:
            session.execute(
                f"INSERT INTO events VALUES ({sid % 4}, {sid})")
        session.declare_snapshot()
    session.create_materialized_view("v", "AggregateDataInTable", QQ,
                                     arg=ARG)
    for n in range(TAIL):
        if n in (2, 5):
            session.execute(f"UPDATE events SET val = val + 1 "
                            f"WHERE grp = {n % 4}")
        else:
            session.execute(f"INSERT INTO noise VALUES ({n})")
        session.declare_snapshot()
    session.close()
    return RQLSession(db=Database(disk=disk, aux_disk=aux),
                      clock=FIXED_CLOCK, workers=1)


def _measure(total: int, full: bool):
    session = _build_history(total)
    try:
        started = time.perf_counter()
        report = session.refresh_view("v", full=full)
        elapsed = time.perf_counter() - started
        return {
            "mode": report.mode,
            "evaluated": float(report.evaluated_snapshots),
            "pagelog_reads": float(report.pagelog_reads),
            "cache_hits": float(report.cache_hits),
            "wall_seconds": elapsed,
        }
    finally:
        session.close()


def run_view_refresh():
    series = {"delta": [], "full": []}
    failures = []
    for total in SNAPSHOT_COUNTS:
        delta = _measure(total, full=False)
        full = _measure(total, full=True)
        series["delta"].append((total, delta))
        series["full"].append((total, full))
        if delta["mode"] != "delta":
            failures.append((total, f"planner picked {delta['mode']}"))
        if full["evaluated"] != float(total):
            failures.append((total, f"full evaluated {full['evaluated']}"))
        if not delta["pagelog_reads"] < full["pagelog_reads"]:
            failures.append(
                (total, "delta did not beat full on Pagelog reads: "
                        f"{delta['pagelog_reads']} vs "
                        f"{full['pagelog_reads']}"))
    result = FigureResult(
        figure="View refresh",
        title=f"incremental vs full refresh, view built {TAIL} "
              "snapshots before the target, sparse trailing updates",
        series=series,
        notes=[
            "pagelog_reads = archived-page fetches during the refresh "
            "(the cost the Maplog diff avoids)",
            "trajectory file: compare pagelog_reads across PRs, not "
            "across machines",
        ],
    )
    return result, failures


def test_view_refresh(benchmark):
    result, failures = benchmark.pedantic(
        run_view_refresh, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    assert failures == [], failures
    for n, (total, delta) in enumerate(result.series["delta"]):
        full = result.series["full"][n][1]
        assert delta["pagelog_reads"] < full["pagelog_reads"]
