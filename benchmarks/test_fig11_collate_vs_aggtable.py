"""Figure 11 — the same result via CollateData + a final SQL
aggregation vs AggregateDataInTable, with 1 and 2 aggregate functions.

Paper claims: CollateData is slightly faster in total time, but
AggregateDataInTable's result table is an order of magnitude smaller
(<100MB vs >1GB at paper scale) and its footprint is independent of the
snapshot-set size; an extra aggregation adds no significant overhead.
"""

from repro.bench import fig11_checks, print_figure, run_fig11, save_figure


def test_fig11_collate_vs_aggtable(benchmark):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    fig11_checks(result)
