"""Figure 9 — CPU-intensive Qq_cpu (lineitem x part join).

Paper claims: without a native index SQLite builds an automatic
covering index per iteration, and that index creation dominates RQL
cost; with a native index captured in the snapshots the build
disappears; the cold/hot gap is small because I/O is a minor share.
"""

from repro.bench import fig9_checks, print_figure, run_fig9, save_figure


def test_fig09_cpu_index(benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    fig9_checks(result)
