"""Figure 10 — CollateData with varying Qq output size (Qq_collate's
date predicate swept across the orders table's date quantiles).

Paper claim: the RQL UDF cost (one insert callback per returned record)
grows with output size and becomes the dominant cost for large outputs;
sharing has minimal impact on these CPU-heavy iterations.
"""

from repro.bench import fig10_checks, print_figure, run_fig10, save_figure


def test_fig10_udf_output_size(benchmark):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    fig10_checks(result)
