"""Server throughput — first point of a trajectory.

N in-process clients drive one shared :class:`repro.server.RQLServer`
with the differential harness's mixed load: snapshot-declaring update
transactions plus retrospective mechanism calls over a prebuilt
history.  Updates serialize through the write gate; queries are
snapshot-pinned and admitted concurrently by the scheduler (partitioned
through the server-wide pool when certified).

The recorded metric is completed operations per wall-clock second at
clients ∈ {1, 2, 4, 8}.  Absolute numbers are machine-bound; the file
``benchmarks/results/server_throughput.txt`` exists so later PRs that
touch the scheduler, gate or pool have a baseline trajectory to append
to.  The test's acceptance is correctness-shaped: every client's
operations complete, the store leaks nothing, and throughput is
finite and positive at every client count.
"""

import threading
import time

from repro.bench import print_figure
from repro.bench.figures import FigureResult
from repro.bench.report import save_figure
from repro.server import RQLServer

CLIENT_COUNTS = (1, 2, 4, 8)
HISTORY_SNAPSHOTS = 12
TXNS_PER_CLIENT = 2
QUERIES_PER_CLIENT = 3

QS = "SELECT snap_id FROM SnapIds ORDER BY snap_id"
QQ = "SELECT grp, val, current_snapshot() FROM events"


def _drive_client(handle, index: int, errors: list) -> None:
    try:
        for n in range(TXNS_PER_CLIENT):
            with handle.transaction(with_snapshot=True):
                handle.execute(
                    f"INSERT INTO events VALUES ({index}, {n})")
        for n in range(QUERIES_PER_CLIENT):
            handle.collate_data(QS, QQ, f"r_{index}_{n}", workers=2)
    except Exception as exc:  # replint: taxonomy-exempt -- recorded; the test asserts the list is empty
        errors.append((index, exc))


def _run_at(clients: int):
    server = RQLServer(gate_timeout=60.0)
    try:
        seed = server.connect("seed")
        seed.execute("CREATE TABLE events (grp, val)")
        for n in range(HISTORY_SNAPSHOTS):
            seed.execute(f"INSERT INTO events VALUES ({n % 4}, {n})")
            seed.declare_snapshot()
        seed.close()

        handles = [server.connect(f"client-{i}") for i in range(clients)]
        errors: list = []
        threads = [
            threading.Thread(target=_drive_client,
                             args=(handles[i], i, errors))
            for i in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        for handle in handles:
            handle.close()
        leaks = server.leak_report()
    finally:
        server.close()
    ops = clients * (TXNS_PER_CLIENT + QUERIES_PER_CLIENT)
    return {
        "clients": float(clients),
        "operations": float(ops),
        "wall_seconds": elapsed,
        "ops_per_second": ops / elapsed if elapsed else 0.0,
    }, errors, leaks


def run_server_throughput():
    series = {}
    failures = []
    for clients in CLIENT_COUNTS:
        point, errors, leaks = _run_at(clients)
        failures.extend(errors)
        if any(leaks.values()):
            failures.append((clients, f"leaks: {leaks}"))
        series[f"clients={clients}"] = [("totals", point)]
    result = FigureResult(
        figure="Server throughput",
        title=f"mixed load, {TXNS_PER_CLIENT} txns + "
              f"{QUERIES_PER_CLIENT} retrospective queries per client "
              f"over a {HISTORY_SNAPSHOTS}-snapshot history",
        series=series,
        notes=[
            "updates serialize through the write gate; queries are "
            "snapshot-pinned and scheduled concurrently",
            "trajectory file: compare ops_per_second across PRs, not "
            "across machines",
        ],
    )
    return result, failures


def test_server_throughput(benchmark):
    result, failures = benchmark.pedantic(
        run_server_throughput, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    assert failures == [], failures
    for clients in CLIENT_COUNTS:
        point = result.series[f"clients={clients}"][0][1]
        assert point["ops_per_second"] > 0.0, point
        assert point["operations"] == float(
            clients * (TXNS_PER_CLIENT + QUERIES_PER_CLIENT))
