"""Ablation (DESIGN.md §7) — Skippy skip-level SPT construction vs a
linear Maplog scan.

Retro's Skippy index [SIGMOD'08] bounds the SPT-build scan at ~n log n
entries regardless of history length; a linear scan degrades with the
distance between the snapshot and the history's end.  Old snapshots in
a long history show the gap.
"""

from repro.bench import print_figure
from repro.bench.figures import FigureResult, _env_fig6, OLD_START
from repro.bench.report import save_figure
from repro.workloads import UW30


def run_ablation_skippy():
    env = _env_fig6(UW30)
    maplog = env.session.db.engine.retro.maplog
    series = {}
    last = env.last_snapshot
    for label, sid in (("oldest snapshot", OLD_START),
                       ("middle snapshot", last // 2),
                       ("recent snapshot", last - 2)):
        skippy = maplog.build_spt(sid, use_skippy=True)
        linear = maplog.build_spt(sid, use_skippy=False)
        assert skippy.spt == linear.spt  # equivalence, always
        series[label] = [(
            "scan", {
                "snapshot": float(sid),
                "skippy_entries": float(skippy.entries_scanned),
                "linear_entries": float(linear.entries_scanned),
                "skippy_nodes": float(skippy.nodes_visited),
                "linear_nodes": float(linear.nodes_visited),
                "spt_size": float(len(skippy.spt)),
            },
        )]
    return FigureResult(
        figure="Ablation Skippy",
        title="SPT construction scan length: Skippy levels vs linear "
              "Maplog scan",
        series=series,
    )


def test_ablation_skippy(benchmark):
    result = benchmark.pedantic(run_ablation_skippy, rounds=1,
                                iterations=1)
    save_figure(result)
    print_figure(result)
    oldest = result.series["oldest snapshot"][0][1]
    # For old snapshots in a long history Skippy scans far less.
    assert oldest["skippy_entries"] < oldest["linear_entries"] / 2
    assert oldest["skippy_nodes"] < oldest["linear_nodes"]
