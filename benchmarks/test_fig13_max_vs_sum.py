"""Figure 13 — AggregateDataInTable sensitivity to the aggregate
function: MAX vs SUM.

Paper claims: cold iterations cost the same (identical inserts + index
creation); hot iterations run the same number of index probes, but SUM
updates the result table for (almost) every record while MAX rarely
does (paper: ~1M vs ~22K updates), making SUM's hot iterations
significantly more expensive.
"""

from repro.bench import fig13_checks, print_figure, run_fig13, save_figure


def test_fig13_max_vs_sum(benchmark):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    fig13_checks(result)
