"""Plan crossover (ISSUE 10) — the costed planner flips seq-scan to
index-scan as selectivity tightens, on a cold old snapshot.

Figure-9 companion: Figure 9 shows what access paths *cost* inside a
snapshot iteration; this bench shows the statistics catalog actually
*choosing* between them.  A snapshot query pinned at the ANALYZE stamp
plans with real statistics, so a narrow `o_orderkey <=` bound probes
`__pk_orders` (few Pagelog pages) while a wide bound seq-scans the
whole table (every orders page through the Pagelog).
"""

from repro.bench import BENCH_CHARGES, print_figure
from repro.bench.figures import FigureResult
from repro.bench.report import save_figure
from repro.core import RQLSession
from repro.core.rewrite import rewrite_qq
from repro.retro.metrics import MetricsSink
from repro.workloads import UW30, SnapshotHistoryBuilder

#: Snapshots before ANALYZE (the stats stamp = the pinned snapshot) and
#: after it (ages the pinned snapshot's pages out of the current state).
PRE_SNAPSHOTS = 3
POST_CYCLES = 1.25

#: Selectivity ladder, as fractions of the orders key domain.  The cost
#: model flips around matched ~= page_count (probe+fetch vs scan), i.e.
#: a few percent of the table — keep points clear of the boundary.
FRACTIONS = (0.002, 0.01, 0.1, 0.4, 1.0)


def _build_env():
    session = RQLSession()
    builder = SnapshotHistoryBuilder(session, scale_factor=0.001, seed=7)
    builder.load_initial()
    ids = builder.build_history(UW30, PRE_SNAPSHOTS)
    session.execute("ANALYZE orders")
    post = int(UW30.overwrite_cycle * POST_CYCLES) + 2
    ids += builder.build_history(UW30, post)
    return session, ids[PRE_SNAPSHOTS - 1]


def _measured_count(session, qq, pin):
    sink = MetricsSink(BENCH_CHARGES)
    previous = session.db.metrics
    session.db.attach_metrics(sink)
    try:
        session.db.engine.retro.cache.clear()
        sink.begin_iteration(pin)
        count = session.execute(rewrite_qq(qq, pin)).scalar()
        sink.end_iteration()
    finally:
        session.db.attach_metrics(previous)
    return count, sink.iterations[0]


def run_plan_crossover() -> FigureResult:
    session, pin = _build_env()
    lo, hi = session.execute(rewrite_qq(
        "SELECT MIN(o_orderkey), MAX(o_orderkey) FROM orders", pin,
    )).rows[0]
    series = {}
    for fraction in FRACTIONS:
        bound = int(lo + fraction * (hi - lo))
        qq = f"SELECT COUNT(*) FROM orders WHERE o_orderkey <= {bound}"
        notes = [row[0] for row in session.execute(
            "EXPLAIN " + rewrite_qq(qq, pin)).rows]
        (access,) = [n for n in notes
                     if n.startswith(("SCAN orders", "SEARCH orders"))]
        (cost,) = [n for n in notes if n.startswith("COST: orders")]
        count, metrics = _measured_count(session, qq, pin)
        series[f"selectivity {fraction:g}"] = [(
            "crossover", {
                "matched_rows": float(count),
                "pagelog_reads": float(metrics.pagelog_reads),
                "db_reads": float(metrics.db_reads),
                "index_chosen": float(access.startswith("SEARCH")),
                "access": access,
                "cost_line": cost,
            },
        )]
    return FigureResult(
        figure="Plan crossover",
        title="Costed access-path choice AS OF a cold old snapshot: "
              "index probe vs seq scan by predicate selectivity",
        series=series,
        notes=[
            f"orders ANALYZEd at snapshot {pin}; queried AS OF that "
            f"snapshot with a cold page cache",
            "the crossover sits where matched-row fetches outweigh a "
            "full-table page scan (~page_count rows)",
        ],
    )


def plan_crossover_checks(result: FigureResult) -> None:
    points = [result.series[f"selectivity {f:g}"][0][1]
              for f in FRACTIONS]
    # Tight selectivity takes the index; the full range seq-scans.
    assert points[0]["access"].startswith(
        "SEARCH orders USING INDEX __pk_orders"), points[0]
    assert points[-1]["access"] == "SCAN orders", points[-1]
    # Every point carries a real costed line (no heuristic fallback:
    # the statistics are visible AS OF the pinned snapshot).
    for point in points:
        assert "est. rows" in point["cost_line"], point
    # Once the planner flips to a scan it never flips back: chosen
    # paths are monotone in selectivity.
    flags = [point["index_chosen"] for point in points]
    assert flags == sorted(flags, reverse=True), flags
    assert flags[0] == 1.0 and flags[-1] == 0.0
    # Pagelog reads at the extremes: the probe touches a handful of
    # cold pages, the seq scan pays for the whole table.
    tight, wide = points[0], points[-1]
    assert tight["pagelog_reads"] > 0, tight
    assert tight["pagelog_reads"] * 3 < wide["pagelog_reads"], \
        (tight["pagelog_reads"], wide["pagelog_reads"])
    # Matched rows grow with the bound; the widest matches everything.
    counts = [point["matched_rows"] for point in points]
    assert counts == sorted(counts), counts
    assert counts[-1] > counts[0]


def test_plan_crossover(benchmark):
    result = benchmark.pedantic(run_plan_crossover, rounds=1,
                                iterations=1)
    save_figure(result)
    print_figure(result)
    plan_crossover_checks(result)
