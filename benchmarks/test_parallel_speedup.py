"""Ablation — serial loop vs the parallel partition/merge executor.

AggregateDataInVariable over 64 snapshots (UW30), serial vs
``workers=4``.  Cost accounting follows the suite's simulated device
model: a parallel run's makespan is the slowest worker's summed
iteration cost plus the serial merge phase
(:func:`repro.bench.harness.parallel_makespan_seconds`) — measured
thread wall-clock would be meaningless under the GIL, so worker
iterations are timed with ``time.thread_time`` (per-thread CPU) through
the executor's injectable clock, the deterministic-metrics seam the
test suite uses.

Why parallel wins: each worker pays ~1/workers of the snapshot
iterations, and the cold Pagelog I/O is shared through the snapshot
page cache (contiguous partitions preserve the paper's hot-iteration
page sharing), so the per-worker cold start does not multiply by the
worker count.
"""

import time

from repro.bench import BENCH_CHARGES, print_figure, run_rql
from repro.bench.figures import FigureResult, _env_fig6, OLD_START
from repro.bench.harness import QQ_IO, parallel_makespan_seconds
from repro.bench.report import save_figure
from repro.core.parallel import ParallelExecutor
from repro.workloads import UW30

SNAPSHOTS = 64
WORKERS = 4
TABLE = "par_speedup"


def run_parallel_speedup():
    env = _env_fig6(UW30)
    qs = env.qs_interval(OLD_START, SNAPSHOTS)
    session = env.session

    serial = run_rql(env, session.aggregate_data_in_variable,
                     qs, QQ_IO, TABLE, "avg")
    serial_seconds = sum(
        it.total_seconds(BENCH_CHARGES) for it in serial.metrics.iterations
    )
    serial_rows = session.execute(f'SELECT * FROM "{TABLE}"').rows

    env.clear_snapshot_cache()
    session.execute(f'DROP TABLE IF EXISTS "{TABLE}"')
    executor = ParallelExecutor(session.db, workers=WORKERS,
                                charges=BENCH_CHARGES,
                                clock=time.thread_time)
    parallel = executor.aggregate_data_in_variable(qs, QQ_IO, TABLE, "avg")
    info = parallel.parallel
    makespan = parallel_makespan_seconds(info)
    parallel_rows = session.execute(f'SELECT * FROM "{TABLE}"').rows

    series = {
        "serial loop": [("totals", {
            "simulated_seconds": serial_seconds,
            "iterations": float(len(serial.metrics.iterations)),
            "pagelog_reads": float(serial.metrics.total_pagelog_reads()),
        })],
        f"parallel, workers={WORKERS}": [("totals", {
            "makespan_seconds": makespan,
            "merge_seconds": info.merge_seconds,
            "slowest_worker_seconds": makespan - info.merge_seconds,
            "iterations": float(sum(
                len(s.iterations) for s in info.worker_sinks)),
            "pagelog_reads": float(sum(
                s.total_pagelog_reads() for s in info.worker_sinks)),
            "speedup": serial_seconds / makespan if makespan else 0.0,
        })],
    }
    return FigureResult(
        figure="Ablation parallel speedup",
        title=f"AggregateDataInVariable over {SNAPSHOTS} snapshots: "
              f"serial loop vs partition/merge executor",
        series=series,
        notes=[
            "makespan = max over workers of summed iteration cost + "
            "serial merge phase (simulated device model)",
            "identical result tables asserted",
        ],
    ), serial_rows, parallel_rows


def test_parallel_speedup(benchmark):
    result, serial_rows, parallel_rows = benchmark.pedantic(
        run_parallel_speedup, rounds=1, iterations=1,
    )
    save_figure(result)
    print_figure(result)
    assert parallel_rows == serial_rows
    serial = result.series["serial loop"][0][1]
    parallel = result.series[f"parallel, workers={WORKERS}"][0][1]
    # The acceptance bar: parallel beats serial under the same cost
    # accounting, on >= 64 snapshots at workers=4.
    assert parallel["makespan_seconds"] < serial["simulated_seconds"], (
        serial, parallel,
    )
    assert serial["iterations"] == float(SNAPSHOTS)
    assert parallel["iterations"] == float(SNAPSHOTS)
