"""Figure 8 — single-iteration cost breakdown (I/O, SPT build, query
evaluation, RQL UDF) for cold vs hot iterations on old, recent, and
current-state data, UW30.

Paper claims: cold iterations on old snapshots are I/O-bound (every
page from the Pagelog); hot iterations hit the snapshot cache; recent
snapshots fetch shared pages from the database; the current state does
no snapshot I/O at all.
"""

from repro.bench import fig8_checks, print_figure, run_fig8, save_figure


def test_fig08_iteration_breakdown(benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    fig8_checks(result)
