"""Benchmark-suite configuration.

Environments (TPC-H + snapshot histories) are cached in-process by
``repro.bench.harness``; the first figure touching a configuration pays
its build cost, later figures reuse it.  Every figure writes its
reproduced series to ``benchmarks/results/``.
"""

import pytest

from repro.bench import PAPER_PARAMETERS


def pytest_report_header(config):
    return [
        "RQL reproduction benchmarks — one per paper figure "
        "(Table 1 parameters reproduced in repro.bench.PAPER_PARAMETERS)",
        f"  figures: 6, 7, 8, 9, 10, 11, 12, 13 + Section 5.3 memory "
        f"table + 4 ablations",
    ]


@pytest.fixture(scope="session", autouse=True)
def _quiet_env():
    yield
