"""Figure 6 — ratio C vs snapshot-interval length (old snapshots).

Paper claim: C starts near 1 for short intervals (the cold iteration
dominates), drops as the interval grows, and converges to a constant
determined by inter-snapshot sharing; more sharing (UW15, step 1) gives
a lower plateau than less sharing (UW30, step 10).
"""

from repro.bench import fig6_checks, print_figure, run_fig6, save_figure


def test_fig06_ratio_c(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    fig6_checks(result)
