"""Ablation — index-probe vs sort-merge AggregateDataInTable.

The paper adopted the index-probe implementation after finding a
sort-merge alternative "costlier" (Section 3).  This bench reproduces
the comparison: the sort-merge variant rescans and re-sorts the result
table every iteration, so its per-iteration UDF cost grows with the
result size while the probe variant's stays bounded by the Qq output.
"""

from repro.bench import BENCH_CHARGES, print_figure
from repro.bench.figures import FigureResult, _env_fig6, OLD_START, INTERVAL
from repro.bench.report import save_figure
from repro.core.mechanisms import AggregateDataInTableRun
from repro.core.sortmerge import SortMergeAggregateDataInTableRun
from repro.workloads import UW30

# Group by orderkey under the sliding-window workload: the result table
# accumulates every orderkey ever seen while each snapshot contributes
# only the currently-open orders — so T grows well beyond the
# per-iteration Qq output, the regime where rescanning T (sort-merge)
# loses to indexed probes.
QQ_WIDE = ("SELECT o_orderkey, o_totalprice AS tp FROM orders "
           "WHERE o_orderstatus = 'O'")
SPEC = [("tp", "max")]


def run_ablation_sort_merge():
    env = _env_fig6(UW30)
    qs = env.qs_interval(OLD_START, INTERVAL)
    series = {}
    for label, cls in (("index probe (paper design)",
                        AggregateDataInTableRun),
                       ("sort-merge alternative",
                        SortMergeAggregateDataInTableRun)):
        env.clear_snapshot_cache()
        table = f"abl_sm_{cls.__name__}"
        env.session.db.execute(f'DROP TABLE IF EXISTS "{table}"')
        run = cls(env.session.db, QQ_WIDE, table, SPEC)
        result = run.run(qs)
        hot = result.metrics.iterations[1:]
        series[label] = [(
            "totals", {
                "total_udf_seconds": sum(
                    i.udf_seconds for i in result.metrics.iterations),
                "hot_udf_mean": sum(i.udf_seconds for i in hot) / len(hot),
                "total_seconds": sum(
                    i.total_seconds(BENCH_CHARGES)
                    for i in result.metrics.iterations),
                "result_rows": float(result.result_rows),
                "probes": float(run.probes),
                "rows_rescanned": float(getattr(run, "rows_rescanned", 0)),
            },
        )]
    return FigureResult(
        figure="Ablation sort-merge",
        title="AggregateDataInTable: index probe vs sort-merge "
              "(the paper's discarded alternative)",
        series=series,
    )


def test_ablation_sort_merge(benchmark):
    result = benchmark.pedantic(run_ablation_sort_merge, rounds=1,
                                iterations=1)
    save_figure(result)
    print_figure(result)
    probe = result.series["index probe (paper design)"][0][1]
    merge = result.series["sort-merge alternative"][0][1]
    # Same result cardinality.
    assert probe["result_rows"] == merge["result_rows"]
    # The deterministic form of the paper's "costlier" finding: the
    # sort-merge variant re-materializes the whole result table every
    # iteration, touching far more rows than the probe variant's
    # per-record index lookups.  (Wall-clock can invert in pure Python,
    # where sorted() runs at C speed while a B+tree probe is
    # interpreted — recorded as a deviation in EXPERIMENTS.md.)
    assert merge["rows_rescanned"] > probe["probes"], (merge, probe)
