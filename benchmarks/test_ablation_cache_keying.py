"""Ablation (DESIGN.md §7) — snapshot cache keyed by Pagelog slot vs by
(snapshot, page).

The paper attributes RQL's hot-iteration savings to COW page sharing:
consecutive snapshots reference the SAME Pagelog pre-state, so caching
by slot turns shared(S1,S2) into hits.  Keying by (snapshot, page)
destroys exactly that and must push hot-iteration I/O back to cold
levels — quantifying how much of the speedup the paper's design choice
is worth.
"""

from repro.bench import BENCH_CHARGES, QQ_IO, get_env, print_figure
from repro.bench.figures import FigureResult, _env_fig6, OLD_START
from repro.bench.report import save_figure
from repro.workloads import UW30


def run_ablation_cache():
    env = _env_fig6(UW30)
    retro = env.session.db.engine.retro
    qs = env.qs_interval(OLD_START, 12)
    series = {}
    try:
        for keying in ("by_slot", "by_snapshot_page"):
            retro.share_cache_by_slot = keying == "by_slot"
            env.clear_snapshot_cache()
            result = env.session.aggregate_data_in_variable(
                qs, QQ_IO, "abl_cache", "avg",
            )
            iterations = result.metrics.iterations
            hot = iterations[1:]
            series[keying] = [(
                "totals", {
                    "cold_pagelog_reads": float(
                        iterations[0].pagelog_reads),
                    "hot_pagelog_reads_mean": sum(
                        i.pagelog_reads for i in hot) / len(hot),
                    "hot_cache_hits_mean": sum(
                        i.cache_hits for i in hot) / len(hot),
                    "total_seconds": sum(
                        i.total_seconds(BENCH_CHARGES)
                        for i in iterations),
                },
            )]
    finally:
        retro.share_cache_by_slot = True
    return FigureResult(
        figure="Ablation cache keying",
        title="Snapshot cache keyed by Pagelog slot (paper design) vs "
              "by (snapshot, page)",
        series=series,
    )


def test_ablation_cache_keying(benchmark):
    result = benchmark.pedantic(run_ablation_cache, rounds=1, iterations=1)
    save_figure(result)
    print_figure(result)
    by_slot = result.series["by_slot"][0][1]
    by_pair = result.series["by_snapshot_page"][0][1]
    # Slot keying turns shared pages into hits; pair keying cannot.
    assert by_slot["hot_pagelog_reads_mean"] < \
        by_pair["hot_pagelog_reads_mean"] / 4
    assert by_pair["hot_pagelog_reads_mean"] > \
        by_pair["cold_pagelog_reads"] * 0.5
    assert by_slot["total_seconds"] < by_pair["total_seconds"]
