#!/usr/bin/env python
"""Quickstart: the paper's LoggedIn example, end to end.

Walks through Figures 1-3 of the paper — declaring snapshots with
``COMMIT WITH SNAPSHOT``, time-traveling with ``SELECT AS OF``, and
running all four RQL mechanisms over the snapshot set.

Run:  python examples/quickstart.py
"""

from repro.core import RQLSession


def show(title, result):
    print(f"\n{title}")
    print("  " + " | ".join(result.columns))
    for row in result.rows:
        print("  " + " | ".join(str(v) for v in row))


def main() -> None:
    session = RQLSession()

    # -- create the application table and some users -----------------------
    session.execute("""
        CREATE TABLE LoggedIn (
            l_userid  TEXT,
            l_time    TEXT,
            l_country TEXT
        )
    """)
    session.execute("""
        INSERT INTO LoggedIn VALUES
            ('UserA', '2008-11-09 13:23:44', 'USA'),
            ('UserB', '2008-11-09 15:45:21', 'UK'),
            ('UserC', '2008-11-09 15:45:21', 'USA')
    """)

    # -- declare snapshots as part of transaction commit (Figure 3) --------
    session.execute("BEGIN")
    s1 = session.commit_with_snapshot(timestamp="2008-11-09 23:59:59")

    session.execute("BEGIN")
    session.execute("DELETE FROM LoggedIn WHERE l_userid = 'UserA'")
    s2 = session.commit_with_snapshot(timestamp="2008-11-10 23:59:59")

    session.execute("BEGIN")
    session.execute(
        "INSERT INTO LoggedIn (l_userid, l_time, l_country) "
        "VALUES ('UserD', '2008-11-11 10:08:04', 'UK')"
    )
    s3 = session.commit_with_snapshot(timestamp="2008-11-11 23:59:59")
    print(f"declared snapshots: {s1}, {s2}, {s3}")

    # -- retrospective queries (single snapshot) ----------------------------
    show("Who was logged in at snapshot 1? (SELECT AS OF 1 ...)",
         session.execute(f"SELECT AS OF {s1} * FROM LoggedIn"))
    show("Who is logged in now?",
         session.execute("SELECT * FROM LoggedIn"))

    # -- RQL: computations over the snapshot SET ---------------------------
    qs = "SELECT snap_id FROM SnapIds"

    session.collate_data(
        qs,
        "SELECT DISTINCT l_userid, current_snapshot() FROM LoggedIn",
        "AllSightings",
    )
    show("CollateData: every (user, snapshot) sighting",
         session.execute('SELECT * FROM "AllSightings" ORDER BY 2, 1'))

    session.aggregate_data_in_variable(
        qs,
        "SELECT DISTINCT 1 FROM LoggedIn WHERE l_userid = 'UserB'",
        "UserBSnapshots", "sum",
    )
    print("\nAggregateDataInVariable: UserB appears in",
          session.execute('SELECT * FROM "UserBSnapshots"').scalar(),
          "snapshots")

    session.aggregate_data_in_table(
        qs,
        "SELECT l_country, COUNT(*) AS c FROM LoggedIn "
        "GROUP BY l_country",
        "MaxPerCountry", "(c,max)",
    )
    show("AggregateDataInTable: max simultaneous logins per country",
         session.execute('SELECT * FROM "MaxPerCountry" ORDER BY 1'))

    session.collate_data_into_intervals(
        qs, "SELECT l_userid FROM LoggedIn", "LoginIntervals",
    )
    show("CollateDataIntoIntervals: login lifetimes",
         session.execute('SELECT * FROM "LoginIntervals" ORDER BY 1'))

    # -- the Section 3 UDF form works too -----------------------------------
    session.execute(
        "SELECT CollateData(snap_id, "
        "'SELECT l_country, current_snapshot() FROM LoggedIn', "
        "'UdfForm') FROM SnapIds WHERE snap_id >= 2"
    )
    print("\nUDF form collected",
          len(session.execute('SELECT * FROM "UdfForm"').rows),
          "rows from snapshots >= 2")


if __name__ == "__main__":
    main()
