-- Retrospective query corpus for rqlint (`repro.cli lint --queries`).
--
-- Plain SQL with `-- rqlint:` annotations: DDL builds the schema,
-- each `mechanism=` directive opens a case whose following SQL is the
-- Qq, and `ignore[...]`/alias pragmas suppress rules with a reason.

CREATE TABLE LoggedIn (
    l_userid  TEXT,
    l_time    TEXT,
    l_country TEXT
);
CREATE TABLE Sales (
    s_day     INTEGER PRIMARY KEY,
    s_region  TEXT,
    s_units   INTEGER
);
CREATE INDEX sales_region ON Sales (s_region);

-- The paper's Figure 2: who was logged in, per snapshot.
-- rqlint: mechanism=CollateData name=user-history qs="SELECT snap_id FROM SnapIds WHERE snap_id BETWEEN 1 AND 3 ORDER BY snap_id"
SELECT DISTINCT l_userid, current_snapshot() FROM LoggedIn;

-- Peak concurrent users across the whole history.  The audit is
-- deliberately retrospective over everything ever recorded.
-- rqlint: mechanism=AggregateDataInVariable name=peak-users arg="max" qs="SELECT snap_id FROM SnapIds ORDER BY snap_id"
-- rqlint: ignore[RQL103] -- the audit intentionally walks all history
SELECT COUNT(*) AS online FROM LoggedIn;

-- Units per region, merged across snapshots.  The region predicate is
-- covered by sales_region, so no RQL104 fires here.
-- rqlint: mechanism=AggregateDataInTable name=region-units arg="units:sum" qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 8"
SELECT s_region, SUM(s_units) AS units FROM Sales
WHERE s_region = 'EU'
GROUP BY s_region;

-- Same query against the unindexed day column: RQL104 would flag the
-- per-snapshot full scan, accepted here to keep the example scan-only.
-- rqlint: mechanism=CollateData name=busy-days qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 8"
-- rqlint: ignore[RQL104] -- tiny table, a scan per snapshot is fine
SELECT s_day, s_units FROM Sales WHERE s_units > 100;

-- A legacy report that only ever runs serially: the mergeclass rules
-- are suppressed as a group via the alias.
-- rqlint: mechanism=AggregateDataInVariable name=legacy-roster arg="group_concat" qs="SELECT snap_id FROM SnapIds WHERE snap_id <= 3"
-- rqlint: mergeclass-exempt -- legacy report, executed with workers=1
SELECT l_userid FROM LoggedIn ORDER BY l_userid;
