#!/usr/bin/env python
"""Session analytics: lifetimes and temporal aggregation over churn.

A larger LoggedIn-style workload: hundreds of users log in and out over
30 snapshots.  Shows the temporal-database-style analyses RQL covers
(paper Section 6 relates them to temporal aggregation and record
lifetimes):

* CollateDataIntoIntervals builds the record-lifetime representation;
* session-length distribution computed with plain SQL over it;
* peak concurrency per country via an across-time GROUP BY;
* named snapshots and time-range snapshot sets as Qs.

Run:  python examples/session_analytics.py
"""

from repro.core import RQLSession
from repro.workloads import LoggedInSimulator


def main() -> None:
    session = RQLSession()
    simulator = LoggedInSimulator(session, users=150, seed=42)

    print("simulating 30 snapshots of login/logout churn...")
    for day in range(30):
        name = f"day-{day + 1}" if day % 10 == 9 else None
        simulator.churn_and_snapshot(logins=25, logouts=18, name=name)

    online_now = session.execute("SELECT COUNT(*) FROM LoggedIn").scalar()
    print(f"currently online: {online_now} users")

    # -- record lifetimes ---------------------------------------------------
    session.collate_data_into_intervals(
        "SELECT snap_id FROM SnapIds",
        "SELECT l_userid FROM LoggedIn",
        "Sessions",
    )
    stats = session.execute("""
        SELECT COUNT(*) AS sessions,
               AVG(end_snapshot - start_snapshot + 1) AS avg_len,
               MAX(end_snapshot - start_snapshot + 1) AS max_len
        FROM "Sessions"
    """).rows[0]
    print(f"\nlogin sessions: {stats[0]}, avg length {stats[1]:.2f} "
          f"snapshots, longest {stats[2]}")

    returning = session.execute("""
        SELECT l_userid, COUNT(*) AS n FROM "Sessions"
        GROUP BY l_userid HAVING n > 1
        ORDER BY n DESC, l_userid LIMIT 5
    """)
    print("most frequently returning users:")
    for user, count in returning.rows:
        print(f"  {user}: {count} separate sessions")

    # -- peak concurrency per country (across-time GROUP BY) ----------------
    session.aggregate_data_in_table(
        "SELECT snap_id FROM SnapIds",
        "SELECT l_country, COUNT(*) AS c FROM LoggedIn "
        "GROUP BY l_country",
        "PeakConcurrency", "(c,max)",
    )
    print("\npeak concurrent logins per country:")
    for country, peak in session.execute(
            'SELECT * FROM "PeakConcurrency" ORDER BY c DESC').rows:
        print(f"  {country}: {peak}")

    # -- named snapshots and windowed snapshot sets --------------------------
    day10 = session.snapids.id_for_name("day-10")
    day20 = session.snapids.id_for_name("day-20")
    print(f"\nnamed snapshots: day-10 -> id {day10}, day-20 -> id {day20}")

    session.aggregate_data_in_variable(
        session.snapids.qs_range(day10, day20),
        "SELECT COUNT(*) FROM LoggedIn",
        "MidPeriodAvg", "avg",
    )
    print(f"average concurrency between day-10 and day-20: "
          f"{session.execute('SELECT * FROM MidPeriodAvg').scalar():.1f}")

    # Strided snapshot set: every 5th snapshot only.
    session.collate_data(
        session.snapids.qs_last(6, step=5),
        "SELECT current_snapshot() AS snap, COUNT(*) AS online "
        "FROM LoggedIn",
        "Sampled",
    )
    print("\nconcurrency sampled every 5 snapshots:")
    for snap, online in session.execute(
            'SELECT * FROM "Sampled" ORDER BY snap').rows:
        print(f"  snapshot {snap}: {online}")


if __name__ == "__main__":
    main()
