#!/usr/bin/env python
"""Auditing scenario: retrospective fact-checking over a TPC-H history.

The paper's motivation: "applications need to analyze the past state of
their data to provide auditing and other forms of fact checking."  This
example builds a small TPC-H order database, applies refresh updates
with a snapshot per business day, then answers typical audit questions:

1. How did the number of open orders evolve? (per-snapshot series)
2. Did total open-order value ever exceed a threshold? (max over time)
3. When did a specific (since-deleted) order first disappear?
4. Which customers placed the most orders in any single day?

Run:  python examples/audit_tpch.py
"""

from repro.core import RQLSession
from repro.workloads import SnapshotHistoryBuilder, UW30


def main() -> None:
    print("loading TPC-H and building a 12-snapshot UW30 history...")
    session = RQLSession()
    builder = SnapshotHistoryBuilder(session, scale_factor=0.001, seed=7)
    builder.load_initial()
    builder.build_history(UW30, 12)
    qs_all = "SELECT snap_id FROM SnapIds"

    # 1. Evolution of open orders: collate the per-snapshot counts.
    session.collate_data(
        qs_all,
        "SELECT current_snapshot() AS snap, COUNT(*) AS open_orders "
        "FROM orders WHERE o_orderstatus = 'O'",
        "OpenOrderHistory",
    )
    print("\nopen orders per snapshot:")
    for snap, count in session.execute(
            'SELECT * FROM "OpenOrderHistory" ORDER BY snap').rows:
        print(f"  snapshot {snap}: {count}")

    # 2. Peak total value of open orders across all snapshots.
    session.aggregate_data_in_variable(
        qs_all,
        "SELECT SUM(o_totalprice) FROM orders WHERE o_orderstatus = 'O'",
        "PeakExposure", "max",
    )
    peak = session.execute('SELECT * FROM "PeakExposure"').scalar()
    print(f"\npeak open-order exposure across history: {peak:,.2f}")

    # 3. Forensic lookup: pick an order that existed in snapshot 1 but
    #    was deleted by a later refresh, and find when it disappeared.
    first_live = session.execute(
        "SELECT MIN(o_orderkey) FROM orders").scalar()
    deleted_key = session.execute(
        "SELECT AS OF 1 MIN(o_orderkey) FROM orders").scalar()
    assert deleted_key < first_live
    session.aggregate_data_in_variable(
        qs_all,
        f"SELECT DISTINCT current_snapshot() FROM orders "
        f"WHERE o_orderkey = {deleted_key}",
        "LastSeen", "max",
    )
    last_seen = session.execute('SELECT * FROM "LastSeen"').scalar()
    print(f"order {deleted_key} last appears in snapshot {last_seen} "
          f"(deleted in snapshot {last_seen + 1})")

    # 4. Most orders by one customer within any single snapshot.
    session.aggregate_data_in_table(
        qs_all,
        "SELECT o_custkey, COUNT(*) AS n FROM orders GROUP BY o_custkey",
        "BusiestCustomers", "(n,max)",
    )
    top = session.execute(
        'SELECT o_custkey, n FROM "BusiestCustomers" '
        "ORDER BY n DESC, o_custkey LIMIT 5"
    )
    print("\ntop customers by max orders in a single snapshot:")
    for custkey, n in top.rows:
        print(f"  customer {custkey}: {n} orders")

    # Bonus: the audit itself is cheap to re-run because consecutive
    # snapshots share pages; show the cold/hot I/O contrast.
    session.db.engine.retro.cache.clear()
    result = session.aggregate_data_in_variable(
        qs_all,
        "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'",
        "Scratch", "avg",
    )
    iterations = result.metrics.iterations
    print(f"\nsnapshot page sharing at work: cold iteration read "
          f"{iterations[0].pagelog_reads} pages from the Pagelog, "
          f"hot iterations averaged "
          f"{sum(i.pagelog_reads for i in iterations[1:]) / (len(iterations) - 1):.1f}")


if __name__ == "__main__":
    main()
